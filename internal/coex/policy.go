package coex

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// PolicyName names a pluggable airtime policy. It is the shared
// vocabulary of the movrsim -coex-policy flag and the movrd job API's
// coex_policy field, so the two front-ends cannot drift apart.
type PolicyName string

// The recognised airtime policies.
const (
	// PolicyRR is the historical round-robin policy: active players
	// split every window evenly (weights permitting), slot order
	// rotating window to window.
	PolicyRR PolicyName = "rr"

	// PolicyPF is proportional-fair airtime: shares are weighted by
	// each player's recent geometric link quality, tracked per window
	// over a short lookback — players the tracking data says can use
	// the air well get more of it.
	PolicyPF PolicyName = "pf"

	// PolicyEDF is deadline-aware airtime: slot sizing is quantized to
	// the display's frame-deadline grid and biased toward the players
	// closest to missing their next frame deadline — the scheduler
	// refuses to slice airtime below the deadline scale, because a slot
	// too short to carry a whole frame before its deadline is wasted
	// air.
	PolicyEDF PolicyName = "edf"
)

// Policies lists the recognised airtime policies in menu order.
func Policies() []PolicyName { return []PolicyName{PolicyRR, PolicyPF, PolicyEDF} }

// PolicyNames renders the menu for usage strings: "rr|pf|edf".
func PolicyNames() string {
	names := make([]string, 0, 3)
	for _, p := range Policies() {
		names = append(names, string(p))
	}
	return strings.Join(names, "|")
}

// ParsePolicy validates a policy name. The empty string is the default
// round-robin policy.
func ParsePolicy(s string) (PolicyName, error) {
	if s == "" {
		return PolicyRR, nil
	}
	for _, p := range Policies() {
		if s == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown airtime policy %q (%s)", s, PolicyNames())
}

// Window is the per-window context an AirtimePolicy sizes sub-slots
// from. Every field and method is a pure function of Index and the
// room's motion traces, so concurrently simulated sessions of one room
// hand their policies identical windows. The slices are scheduler-owned
// scratch, valid only for the duration of the Shares call.
type Window struct {
	// Index is the scheduling window number (Start / the room period).
	Index int64

	// Start is the window's start in virtual time.
	Start time.Duration

	// DownStart is where the downlink span begins in virtual time — the
	// end of the window's pose-uplink reservation (Start when the
	// reservation is off). Deadline-aware policies need the absolute
	// position to find the display's frame-deadline grid.
	DownStart time.Duration

	// Downlink is the airtime the policy divides: the window span minus
	// the pose-uplink reservation.
	Downlink time.Duration

	// Frame is the display's frame interval — the deadline grid
	// deadline-aware policies size slots against.
	Frame time.Duration

	// Poses holds every player's position at the window start.
	Poses []geom.Vec

	// Active flags the players whose direct path from the AP is clear
	// of other bodies (all true when everyone is blocked — the
	// idle-reclaim fallback). Inactive players receive no airtime
	// whatever the policy returns.
	Active []bool

	// NActive counts the true entries of Active.
	NActive int

	// Weights are the room's per-player airtime weights; nil means
	// equal. Use Weight to read them.
	Weights []float64

	// ExtPenaltyDB is the bay's external-interference input for this
	// window: the SINR penalty co-channel neighbors impose (0 when the
	// room has none — see Room.ExtSINRPenaltyDB). It is advisory
	// context: a policy consulting it must remain share-invariant when
	// the penalty applies bay-wide (as the built-ins trivially are, by
	// ignoring it), or schedules read from a Geometry snapshot — which
	// is built without the input — would diverge from live layout.
	ExtPenaltyDB float64

	sched *Scheduler
}

// Players returns the number of headsets sharing the medium.
func (w *Window) Players() int { return len(w.Poses) }

// Weight returns player i's airtime weight (1 when the room carries no
// explicit weights).
func (w *Window) Weight(i int) float64 {
	if w.Weights == nil {
		return 1
	}
	return w.Weights[i]
}

// Quality returns player i's geometric link quality at this window: an
// AP-proximity factor discounted hard under body blockage. See
// Scheduler.qualityOf.
func (w *Window) Quality(i int) float64 { return w.sched.qualityOf(w.Index, i) }

// qualityLookback is how many windows of geometric link quality the
// proportional-fair policy averages over — 8 windows of the 50 ms
// cadence, i.e. the last ~400 ms of motion.
const qualityLookback = 8

// blockedQuality discounts the quality of a body-blocked player: the
// direct path is shadowed, so airtime spent on it mostly misses.
const blockedQuality = 0.05

// RecentQuality returns the mean of player i's geometric link quality
// over the trailing qualityLookback windows (ending at this one,
// truncated at the session start). Recomputed from the traces rather
// than accumulated, so the value is identical however the schedule is
// queried.
func (w *Window) RecentQuality(i int) float64 {
	lo := w.Index - qualityLookback + 1
	if lo < 0 {
		lo = 0
	}
	sum := 0.0
	for k := lo; k <= w.Index; k++ {
		sum += w.sched.qualityOf(k, i)
	}
	return sum / float64(w.Index-lo+1)
}

// AirtimePolicy sizes the per-player sub-slots of every scheduling
// window. Implementations must be deterministic pure functions of the
// Window (any state must be reconstructible from Index alone): the same
// window must always produce the same shares, whatever order windows are
// visited in, or concurrently simulated sessions of one room would
// derive conflicting schedules.
type AirtimePolicy interface {
	// Name identifies the policy in reports and wire configs.
	Name() PolicyName

	// Shares fills shares[i] with player i's relative share of the
	// window's downlink airtime (shares is zeroed, len = Players()).
	// The scheduler normalizes, so only ratios matter; inactive
	// players are forced to zero regardless. Returning all zeros
	// degrades to an even split over the active players.
	Shares(w *Window, shares []float64)
}

// MaxAdmissible reports how many of n requested players the named
// airtime policy can serve in one bay without starving anyone — the
// policy-driven capacity the venue admission path asks before letting
// players onto a bay's medium. Zero period/frame resolve to the same
// defaults NewScheduler applies. Every policy requires the per-player
// pose-uplink reservation to leave downlink airtime; the deadline-aware
// policy additionally refuses players beyond the number of whole
// display-frame intervals a window's downlink span carries, because a
// player entitled to less than one whole frame per window on average
// can never meet a deadline — admitting it starves everyone's deadline
// budget instead of degrading gracefully.
func MaxAdmissible(p PolicyName, n int, period, frame, uplink time.Duration) int {
	if period <= 0 {
		period = DefaultPeriod
	}
	if frame <= 0 {
		frame = vr.HTCVive().FrameInterval()
	}
	if uplink < 0 {
		uplink = 0
	}
	name, err := ParsePolicy(string(p))
	if err != nil {
		name = PolicyRR
	}
	for k := n; k > 1; k-- {
		down := period - uplink*time.Duration(k)
		if down <= 0 {
			continue
		}
		if name == PolicyEDF && int64(down/frame) < int64(k) {
			continue
		}
		return k
	}
	return 1
}

// newPolicy instantiates the named policy with scratch sized for n
// players. Policies are per-scheduler: their scratch must not be shared
// between sessions.
func newPolicy(name PolicyName, n int) (AirtimePolicy, error) {
	p, err := ParsePolicy(string(name))
	if err != nil {
		return nil, err
	}
	switch p {
	case PolicyRR:
		return rrPolicy{}, nil
	case PolicyPF:
		return &pfPolicy{q: make([]float64, n)}, nil
	case PolicyEDF:
		return &edfPolicy{
			served: make([]bool, n),
			quota:  make([]int, n),
			frac:   make([]float64, n),
		}, nil
	}
	return nil, fmt.Errorf("unknown airtime policy %q (%s)", p, PolicyNames())
}

// rrPolicy is the historical round-robin policy: every active player
// gets an equal (weight-scaled) share. With nil weights the resulting
// sub-slot boundaries are bit-identical to the pre-policy scheduler.
type rrPolicy struct{}

func (rrPolicy) Name() PolicyName { return PolicyRR }

func (rrPolicy) Shares(w *Window, shares []float64) {
	for i := range shares {
		if w.Active[i] {
			shares[i] = w.Weight(i)
		}
	}
}

// pfPolicy is proportional-fair airtime: shares proportional to each
// player's recent geometric link quality (AP proximity discounted by
// body blockage, averaged over the trailing qualityLookback windows).
// Airtime flows to the players the tracking data says can convert it to
// delivered frames; a player boxed in behind other bodies stops taxing
// the medium it could not use anyway.
type pfPolicy struct {
	q []float64 // per-player recent-quality scratch
}

func (*pfPolicy) Name() PolicyName { return PolicyPF }

func (p *pfPolicy) Shares(w *Window, shares []float64) {
	// One bulk lookback pass per window: every lookback window's poses
	// are evaluated once for all players (Window.RecentQuality per
	// player would redo the pose fills n times over).
	w.sched.recentQualityInto(w.Index, p.q)
	for i := range shares {
		if w.Active[i] {
			shares[i] = w.Weight(i) * p.q[i]
		}
	}
}

// edfMinFrames is the smallest slot the deadline-aware policy will
// schedule, in display frame intervals. A slot shorter than a frame
// interval can never carry a whole frame before its deadline; two
// intervals guarantee at least one wholly-covered frame whatever the
// slot's phase against the display clock.
const edfMinFrames = 2

// edfPolicy is deadline-aware slot sizing. Slicing every window evenly
// — the round-robin policy — puts slot boundaries in the middle of
// display frame intervals: the frame straddling a boundary is
// transmitted partially by one player's slot and abandoned at its
// deadline, so the airtime on both sides of every misaligned boundary
// is wasted. This policy instead
//
//   - grants airtime in whole frame-deadline units: every interior slot
//     boundary is placed on the display's absolute frame-deadline grid,
//     so no boundary splits a frame interval — a slot either carries a
//     frame to its deadline whole or does not start it, and a player
//     whose entitlement rounds to zero whole frames this window gets no
//     slot at all rather than a sub-frame sliver of wasted air;
//   - with equal weights, serves only as many players per window as can
//     each receive at least edfMinFrames whole frame intervals,
//     rotating the service block by its own size every window so the
//     players who have waited longest — the ones closest to missing
//     their next frame deadline — are served next;
//   - with unequal weights, apportions the window's whole frame
//     intervals across every active player in proportion to weight,
//     carrying each player's fractional entitlement across windows in
//     closed form (a 1-vs-3 weighted pair receives 1 and 3 of a
//     4-frame window; a tiny-weight player accrues entitlement until a
//     whole frame rolls over, instead of starving or being handed
//     unusable slivers).
type edfPolicy struct {
	served []bool    // active players picked for this window
	quota  []int     // whole frame intervals granted, by player
	frac   []float64 // fractional entitlements, by player
}

func (*edfPolicy) Name() PolicyName { return PolicyEDF }

func (p *edfPolicy) Shares(w *Window, shares []float64) {
	fallback := func() {
		for i := range shares {
			if w.Active[i] {
				shares[i] = w.Weight(i)
			}
		}
	}
	frame := w.Frame
	if frame <= 0 || w.Downlink < frame {
		// The downlink span cannot carry even one whole frame: no
		// sizing can save a deadline, fall back to the even split.
		fallback()
		return
	}
	// The display's deadline grid: first deadline edge on or after the
	// downlink start, and the count of whole frame intervals between it
	// and the window end.
	ds := w.DownStart
	g0 := ((ds + frame - 1) / frame) * frame
	f := int((ds + w.Downlink - g0) / frame)
	if f < 1 {
		fallback()
		return
	}

	n := len(w.Active)
	for i := 0; i < n; i++ {
		p.quota[i] = 0
	}
	if p.uniformWeights(w) {
		p.blockQuotas(w, f)
	} else {
		p.weightedQuotas(w, f)
	}

	// Slot widths, in the scheduler's slot-layout order (cyclic from
	// the rotation offset — the same order the scheduler lays sub-slots
	// out in, so cumulative quota boundaries land exactly on the
	// deadline grid): the first slot absorbs the sub-frame lead-in
	// before g0, the last the tail after the final deadline edge;
	// interior boundaries sit on the grid. Shares are the widths
	// themselves (the scheduler normalizes).
	layoutOff := int(w.Index % int64(n))
	last := -1
	for o := 0; o < n; o++ {
		i := (layoutOff + o) % n
		if p.quota[i] > 0 {
			last = i
		}
	}
	if last < 0 {
		fallback() // unreachable: the quotas always sum to f >= 1
		return
	}
	lo := ds
	cum := 0
	for o := 0; o < n; o++ {
		i := (layoutOff + o) % n
		if p.quota[i] == 0 {
			continue
		}
		cum += p.quota[i]
		hi := g0 + frame*time.Duration(cum)
		if i == last {
			hi = ds + w.Downlink
		}
		shares[i] = float64(hi - lo)
		lo = hi
	}
}

// uniformWeights reports whether every active player carries the same
// airtime weight — the common (nil-weights) case the concentration
// path serves.
func (p *edfPolicy) uniformWeights(w *Window) bool {
	if w.Weights == nil {
		return true
	}
	first := -1.0
	for i := range w.Active {
		if !w.Active[i] {
			continue
		}
		if first < 0 {
			first = w.Weights[i]
			continue
		}
		if w.Weights[i] != first {
			return false
		}
	}
	return true
}

// blockQuotas is the equal-weight service pattern: only as many players
// per window as can each receive at least edfMinFrames whole frame
// intervals, the service block rotating by its own size every window so
// service frequency stays uniform and the longest-waiting players are
// served next. The f frame intervals split as evenly as integers allow,
// extras to the earliest slots — the ones nearest their deadline.
func (p *edfPolicy) blockQuotas(w *Window, f int) {
	nServe := f / edfMinFrames
	if nServe < 1 {
		nServe = 1
	}
	if nServe > w.NActive {
		nServe = w.NActive
	}
	off := int((w.Index * int64(nServe)) % int64(w.NActive))
	rank := 0
	for i := range w.Active {
		p.served[i] = false
		if !w.Active[i] {
			continue
		}
		d := rank - off
		if d < 0 {
			d += w.NActive
		}
		p.served[i] = d < nServe
		rank++
	}
	n := len(w.Active)
	layoutOff := int(w.Index % int64(n))
	base, rem := f/nServe, f%nServe
	for o := 0; o < n; o++ {
		i := (layoutOff + o) % n
		if !p.served[i] {
			continue
		}
		p.quota[i] = base
		if rem > 0 {
			p.quota[i]++
			rem--
		}
	}
}

// weightedQuotas apportions the f whole frame intervals across every
// active player in proportion to weight. Each player's cumulative
// entitlement through this window — Index·f·share, phase-offset by
// active rank so equal entitlements do not roll over in lockstep — is
// evaluated in closed form, and the player receives the whole frames
// that entitlement gained this window: a pure function of the window
// index, so concurrently simulated sessions agree, yet fractional
// entitlement carries across windows and a tiny-weight player
// periodically collects a whole usable frame instead of starving.
// Grants are padded/trimmed to exactly f, preferring the entitlements
// closest to rolling over.
func (p *edfPolicy) weightedQuotas(w *Window, f int) {
	n := len(w.Active)
	sumW := 0.0
	for i := range w.Active {
		if w.Active[i] {
			sumW += w.Weight(i)
		}
	}
	total := 0
	rank := 0
	for i := 0; i < n; i++ {
		p.frac[i] = -1
		if !w.Active[i] {
			continue
		}
		ws := w.Weight(i) / sumW
		phase := float64(rank) / float64(w.NActive)
		rank++
		c1 := (float64(w.Index)+1)*float64(f)*ws + phase
		c0 := float64(w.Index)*float64(f)*ws + phase
		q := int(math.Floor(c1)) - int(math.Floor(c0))
		if q < 0 {
			q = 0
		}
		p.quota[i] = q
		p.frac[i] = c1 - math.Floor(c1)
		total += q
	}
	layoutOff := int(w.Index % int64(n))
	for ; total < f; total++ {
		best := -1
		for o := 0; o < n; o++ {
			i := (layoutOff + o) % n
			if w.Active[i] && (best < 0 || p.frac[i] > p.frac[best]) {
				best = i
			}
		}
		p.quota[best]++
		p.frac[best]--
	}
	// Trims come out of the largest grant: a heavy player recovers the
	// odd withheld frame within a window or two, whereas trimming the
	// smallest fraction would systematically reclaim a light player's
	// rare rollover frame the moment it lands (its fraction is near
	// zero right after rolling over, and the closed-form entitlement
	// cannot carry the debt forward).
	for ; total > f; total-- {
		worst := -1
		for o := 0; o < n; o++ {
			i := (layoutOff + o) % n
			if !w.Active[i] || p.quota[i] == 0 {
				continue
			}
			if worst < 0 || p.quota[i] > p.quota[worst] ||
				(p.quota[i] == p.quota[worst] && p.frac[i] < p.frac[worst]) {
				worst = i
			}
		}
		p.quota[worst]--
	}
}
