// Package coex models shared-medium coexistence in multi-headset rooms:
// several untethered VR headsets contending for one 60 GHz channel — the
// VR-arcade deployment the paper's introduction targets. Two effects make
// a shared bay strictly harder than N copies of a private room:
//
//   - airtime: the medium is one channel, so each player only transmits
//     during its TDMA slots. The scheduler here splits every scheduling
//     window (the 50 ms tracking cadence) round-robin across the room's
//     players, and reclaims the slots of players whose direct path from
//     the AP is body-blocked — a blocked player cannot use the air, so
//     its share is lent to the others (the idle-reclaim policy);
//   - blockage: every other player's body is a moving obstacle on this
//     player's mmWave paths. The experiments layer feeds the same peer
//     traces used for scheduling into the ray tracer's world as dynamic
//     body obstacles.
//
// The scheduler is deterministic and purely geometric: the active set of
// each window is computed from the players' motion traces at the window
// start, so every session in a room — simulated independently and
// concurrently — derives the identical schedule.
package coex

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/vr"
)

// DefaultPeriod is the TDMA scheduling window when none is configured —
// the paper's 50 ms tracking cadence, so the schedule and the beam
// controller re-plan on the same clock.
const DefaultPeriod = 50 * time.Millisecond

// Room describes one shared-medium room from a single session's point of
// view: every player sharing the channel (including this one) and which
// of them this session is.
type Room struct {
	// Players holds the motion trace of every headset sharing the
	// room's medium, in TDMA slot order. Each session in the room must
	// be built with the same Players list for the per-session schedules
	// to agree.
	Players []vr.Trace

	// Self is this session's index in Players.
	Self int

	// Period is the TDMA scheduling window. Zero means DefaultPeriod.
	Period time.Duration

	// BodyRadiusM is the blocking radius of a player's body for the
	// idle-reclaim line-of-sight test. Zero means room.BodyRadiusM.
	BodyRadiusM float64
}

// Scheduler computes this session's airtime share of the room's medium
// over virtual time. It caches the most recent scheduling window, so the
// mostly-monotonic time queries of a streaming run cost one active-set
// evaluation per window. A Scheduler is stateful scratch and must not be
// shared between sessions; build one per streamed session.
type Scheduler struct {
	players []vr.Trace
	self    int
	period  time.Duration
	radius  float64
	ap      geom.Vec

	// Cached window: the sub-slot [slotStart, slotEnd) assigned to Self
	// inside window winIdx, or active=false when Self's slots were
	// reclaimed.
	winIdx             int64
	active             bool
	slotStart, slotEnd time.Duration
}

// NewScheduler validates the room and builds the session's scheduler.
// ap is the transmitter position the idle-reclaim LOS test sights from
// (the room's AP).
func NewScheduler(rm Room, ap geom.Vec) (*Scheduler, error) {
	if len(rm.Players) == 0 {
		return nil, fmt.Errorf("coex: room has no players")
	}
	if rm.Self < 0 || rm.Self >= len(rm.Players) {
		return nil, fmt.Errorf("coex: self index %d out of range [0,%d)", rm.Self, len(rm.Players))
	}
	for i, tr := range rm.Players {
		if len(tr) == 0 {
			return nil, fmt.Errorf("coex: player %d has an empty trace", i)
		}
	}
	period := rm.Period
	if period <= 0 {
		period = DefaultPeriod
	}
	radius := rm.BodyRadiusM
	if radius <= 0 {
		radius = room.BodyRadiusM
	}
	return &Scheduler{
		players: rm.Players,
		self:    rm.Self,
		period:  period,
		radius:  radius,
		ap:      ap,
		winIdx:  -1,
	}, nil
}

// Players returns the number of headsets sharing the medium.
func (s *Scheduler) Players() int { return len(s.players) }

// Share returns this session's airtime multiplier at virtual time t: 1
// inside its own TDMA sub-slot, 0 outside. Slots rotate round-robin
// window to window, so a player's slot sweeps every phase of the frame
// cadence over a session, and the sub-slots of body-blocked players are
// redistributed to the active ones.
func (s *Scheduler) Share(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	if win := int64(t / s.period); win != s.winIdx {
		s.computeWindow(win)
	}
	if s.active && t >= s.slotStart && t < s.slotEnd {
		return 1
	}
	return 0
}

// Wrap composes the schedule into a link-rate function: the wrapped rate
// is the underlying link rate during this session's slots and zero while
// another player holds the medium.
func (s *Scheduler) Wrap(rate stream.RateFunc) stream.RateFunc {
	return func(now time.Duration) float64 {
		return rate(now) * s.Share(now)
	}
}

// computeWindow evaluates the active set at the start of window win and
// assigns the window's sub-slots: active players split the window evenly
// in round-robin order (the rotation offset advances every window), and
// blocked players get nothing — their airtime is reclaimed. When every
// player is blocked there is nothing to reclaim and the schedule falls
// back to an even split over everyone.
func (s *Scheduler) computeWindow(win int64) {
	s.winIdx = win
	start := s.period * time.Duration(win)

	n := len(s.players)
	poses := make([]geom.Vec, n)
	for i, tr := range s.players {
		poses[i] = tr.At(start).Pos
	}
	active := make([]bool, n)
	nActive := 0
	for i := range s.players {
		active[i] = s.losClear(poses, i)
		if active[i] {
			nActive++
		}
	}
	if nActive == 0 {
		for i := range active {
			active[i] = true
		}
		nActive = n
	}

	if !active[s.self] {
		s.active = false
		return
	}
	// Rank of self among the active players in cyclic order from the
	// window's rotation offset.
	rank := 0
	for off := 0; off < n; off++ {
		i := (int(win%int64(n)) + off) % n
		if i == s.self {
			break
		}
		if active[i] {
			rank++
		}
	}
	s.active = true
	// Sub-slot boundaries are computed from the window span (not a
	// pre-divided slot width) so the last slot ends exactly at the next
	// window — the same full-coverage rule stream.Run uses.
	s.slotStart = start + s.period*time.Duration(rank)/time.Duration(nActive)
	s.slotEnd = start + s.period*time.Duration(rank+1)/time.Duration(nActive)
}

// losClear reports whether player i's direct path from the AP is clear
// of every other player's body disc — the idle-reclaim activity test.
// It deliberately ignores walls and furniture: the question is whether
// the *other players* have shadowed this one, which is the signal the
// room's scheduler can read from tracking data alone.
func (s *Scheduler) losClear(poses []geom.Vec, i int) bool {
	seg := geom.Seg(s.ap, poses[i])
	for j := range poses {
		if j == i {
			continue
		}
		body := geom.Circle{C: poses[j], R: s.radius}
		if body.IntersectsSegment(seg) {
			return false
		}
	}
	return true
}
