// Package coex models shared-medium coexistence in multi-headset rooms:
// several untethered VR headsets contending for one 60 GHz channel — the
// VR-arcade deployment the paper's introduction targets. Two effects make
// a shared bay strictly harder than N copies of a private room:
//
//   - airtime: the medium is one channel, so each player only transmits
//     during its TDMA slots. The scheduler here splits every scheduling
//     window (the 50 ms tracking cadence) across the room's players
//     according to a pluggable AirtimePolicy — round-robin by default,
//     with proportional-fair and deadline-aware alternatives — and
//     reclaims the slots of players whose direct path from the AP is
//     body-blocked: a blocked player cannot use the air, so its share is
//     lent to the others (the idle-reclaim policy). Each window may also
//     reserve a pose-report uplink sub-slot per active player (the
//     paper's 50 ms tracking cadence runs over the same medium), which
//     is subtracted from the downlink airtime before any video bits fly;
//   - blockage: every other player's body is a moving obstacle on this
//     player's mmWave paths. The experiments layer feeds the same peer
//     traces used for scheduling into the ray tracer's world as dynamic
//     body obstacles.
//
// The scheduler is deterministic and purely geometric: every quantity a
// policy may consult — the active set, link quality, deadline grid — is
// a pure function of the window index and the players' motion traces, so
// every session in a room (simulated independently and concurrently)
// derives the identical schedule regardless of query order.
//
// # Room-owned geometry snapshots
//
// Because the schedule and the peer poses belong to the room rather
// than to any one session, they can be computed once per room instead
// of once per session: BuildGeometry precomputes a Geometry — every
// player's pose on a fixed tick grid plus every player's slot
// boundaries for every window over a horizon — and co-located sessions
// attach the shared snapshot via Room.Geometry. The snapshot contract:
//
//   - the tables are recorded by running the scheduler's own
//     window-layout code, and live evaluation (the fallback beyond the
//     horizon, or with no snapshot attached) runs that same code, so
//     snapshot reads are bit-identical to live evaluation by
//     construction;
//   - Geometry.PoseAt answers only exact on-grid queries (ok=false off
//     the step grid, beyond the horizon, or out of range) — callers
//     fall back to the trace, and no pose is ever interpolated;
//   - NewScheduler verifies the snapshot against the room's resolved
//     configuration (players compared by trace content, policy,
//     period, weights, uplink, frame grid) and rejects any mismatch,
//     so a stale snapshot fails fast instead of skewing a schedule.
package coex

import (
	"fmt"
	"math"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/vr"
)

// DefaultPeriod is the TDMA scheduling window when none is configured —
// the paper's 50 ms tracking cadence, so the schedule and the beam
// controller re-plan on the same clock.
const DefaultPeriod = 50 * time.Millisecond

// Room describes one shared-medium room from a single session's point of
// view: every player sharing the channel (including this one) and which
// of them this session is.
type Room struct {
	// Players holds the motion trace of every headset sharing the
	// room's medium, in TDMA slot order. Each session in the room must
	// be built with the same Players list for the per-session schedules
	// to agree.
	Players []vr.Trace

	// Self is this session's index in Players.
	Self int

	// Period is the TDMA scheduling window. Zero means DefaultPeriod.
	Period time.Duration

	// BodyRadiusM is the blocking radius of a player's body for the
	// idle-reclaim line-of-sight test. Zero means room.BodyRadiusM.
	BodyRadiusM float64

	// Policy selects the airtime policy that sizes the per-player
	// sub-slots of every window. Empty means PolicyRR, the historical
	// round-robin even split.
	Policy PolicyName

	// Weights are per-player airtime weights applied by every policy
	// (a weight-2 player receives twice the share of a weight-1 player,
	// all else equal). Nil means equal weights; otherwise the length
	// must match Players and every weight must be positive and finite.
	Weights []float64

	// UplinkSlot reserves a pose-report uplink sub-slot of this length
	// per active player at the head of every scheduling window — the
	// tracking report the paper's 50 ms cadence carries back to the VR
	// PC over the same medium. The reservation is subtracted from the
	// window's downlink airtime: no session's Share is ever 1 inside
	// it. Zero disables the reservation (the historical behavior).
	// UplinkSlot × len(Players) must stay below Period.
	UplinkSlot time.Duration

	// FrameInterval is the display deadline grid the deadline-aware
	// policy (PolicyEDF) quantizes slot sizes to. Zero means the HTC
	// Vive frame interval (≈11.1 ms at 90 Hz).
	FrameInterval time.Duration

	// ExtSINRPenaltyDB, when non-empty, is the bay's external-
	// interference input: the SINR penalty (dB ≥ 0) that co-channel
	// transmitters in neighboring bays impose, indexed by scheduling
	// window (out-of-range windows carry no penalty). The venue layer
	// computes the table per bay from the neighbors' geometry snapshots;
	// a plain table rather than a callback keeps rooms comparable and
	// spec generation trivially deterministic. It reaches the airtime
	// policies via Window.ExtPenaltyDB and the session's link budget via
	// Scheduler.ExtPenaltyDB; the built-in policies' shares are
	// invariant to it (a bay-wide penalty scales every player's quality
	// equally and shares normalize), which is what keeps a Geometry
	// snapshot built without the input bit-identical to live layout.
	// Empty means no external interference — the historical single-room
	// behavior.
	ExtSINRPenaltyDB []float64

	// Geometry, when non-nil, is the room-owned precomputed snapshot —
	// peer poses and the full window schedule over the room's horizon,
	// built once with BuildGeometry and shared read-only by every
	// co-located session. NewScheduler verifies it was built for this
	// room's exact configuration (traces compared by content, so a
	// session substituting its own regenerated trace at Self still
	// matches) and fails fast on any mismatch. Schedules read from a
	// Geometry are bit-identical to live evaluation.
	Geometry *Geometry
}

// Scheduler computes this session's airtime share of the room's medium
// over virtual time. It caches the most recent scheduling window, so the
// mostly-monotonic time queries of a streaming run cost one policy
// evaluation per window. A Scheduler is stateful scratch and must not be
// shared between sessions; build one per streamed session.
type Scheduler struct {
	players []vr.Trace
	self    int
	period  time.Duration
	radius  float64
	ap      geom.Vec
	weights []float64
	uplink  time.Duration
	frame   time.Duration
	policy  AirtimePolicy
	ext     []float64

	// Cached window: the sub-slot [slotStart, slotEnd) assigned to Self
	// inside window winIdx (selfActive=false when Self's slots were
	// reclaimed or sized to nothing), plus the end of the window's
	// uplink pose reservation.
	winIdx             int64
	selfActive         bool
	slotStart, slotEnd time.Duration
	upEnd              time.Duration

	// obs, when non-nil, receives a slot_grant or slot_reclaim event
	// plus an airtime event per scheduling window; entitled is Self's
	// weight fraction of the room, precomputed so window emission stays
	// allocation- and division-free. Recording never feeds back into
	// the schedule.
	obs      *obs.Recorder
	entitled float64

	// geo, when non-nil, is the room-owned precomputed schedule this
	// scheduler reads windows from instead of evaluating its policy —
	// see Geometry. Windows beyond the geometry's horizon fall back to
	// the live layout, which is the same code the geometry was recorded
	// from, so the fallback is bit-identical.
	geo *Geometry

	// Reusable per-window scratch (computeWindow is allocation-free):
	// player poses and the active set at the window start, the policy's
	// share vector, a second pose buffer for quality lookbacks so
	// policies can evaluate past windows without clobbering the current
	// one, and the integer slot widths plus all-player slot boundaries
	// of the window being laid out.
	poses     []geom.Vec
	activeSet []bool
	shares    []float64
	lbPoses   []geom.Vec
	win       Window
	wis       []int64
	actAll    []bool
	startAll  []time.Duration
	endAll    []time.Duration
}

// NewScheduler validates the room and builds the session's scheduler.
// ap is the transmitter position the idle-reclaim LOS test sights from
// (the room's AP).
func NewScheduler(rm Room, ap geom.Vec) (*Scheduler, error) {
	if len(rm.Players) == 0 {
		return nil, fmt.Errorf("coex: room has no players")
	}
	if rm.Self < 0 || rm.Self >= len(rm.Players) {
		return nil, fmt.Errorf("coex: self index %d out of range [0,%d)", rm.Self, len(rm.Players))
	}
	for i, tr := range rm.Players {
		if len(tr) == 0 {
			return nil, fmt.Errorf("coex: player %d has an empty trace", i)
		}
	}
	period := rm.Period
	if period <= 0 {
		period = DefaultPeriod
	}
	radius := rm.BodyRadiusM
	if radius <= 0 {
		radius = room.BodyRadiusM
	}
	if rm.Weights != nil {
		if len(rm.Weights) != len(rm.Players) {
			return nil, fmt.Errorf("coex: %d weights for %d players", len(rm.Weights), len(rm.Players))
		}
		for i, w := range rm.Weights {
			if !(w > 0) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("coex: player %d weight %v must be positive and finite", i, w)
			}
		}
	}
	if rm.UplinkSlot < 0 {
		return nil, fmt.Errorf("coex: uplink slot %v must not be negative", rm.UplinkSlot)
	}
	if res := rm.UplinkSlot * time.Duration(len(rm.Players)); res >= period {
		return nil, fmt.Errorf("coex: uplink reservation %v (%d players × %v) leaves no downlink airtime in a %v window",
			res, len(rm.Players), rm.UplinkSlot, period)
	}
	frame := rm.FrameInterval
	if frame <= 0 {
		frame = vr.HTCVive().FrameInterval()
	}
	n := len(rm.Players)
	s := &Scheduler{
		players:   rm.Players,
		self:      rm.Self,
		ext:       rm.ExtSINRPenaltyDB,
		period:    period,
		radius:    radius,
		ap:        ap,
		weights:   rm.Weights,
		uplink:    rm.UplinkSlot,
		frame:     frame,
		winIdx:    -1,
		poses:     make([]geom.Vec, n),
		activeSet: make([]bool, n),
		shares:    make([]float64, n),
		lbPoses:   make([]geom.Vec, n),
		wis:       make([]int64, n),
		actAll:    make([]bool, n),
		startAll:  make([]time.Duration, n),
		endAll:    make([]time.Duration, n),
	}
	policy, err := newPolicy(rm.Policy, n)
	if err != nil {
		return nil, err
	}
	s.policy = policy
	if rm.Weights != nil {
		var sumW float64
		for _, w := range rm.Weights {
			sumW += w
		}
		s.entitled = rm.Weights[rm.Self] / sumW
	} else {
		s.entitled = 1 / float64(n)
	}
	s.win.sched = s
	if rm.Geometry != nil {
		if err := rm.Geometry.check(s); err != nil {
			return nil, err
		}
		s.geo = rm.Geometry
	}
	return s, nil
}

// Players returns the number of headsets sharing the medium.
func (s *Scheduler) Players() int { return len(s.players) }

// SetRecorder attaches an event recorder to the scheduler. Each
// scheduling window then emits a slot_grant (or slot_reclaim, when
// blockage cost Self its slot) plus an airtime received-vs-entitled
// event, stamped at the window start. A nil recorder disables emission.
func (s *Scheduler) SetRecorder(r *obs.Recorder) { s.obs = r }

// Policy returns the name of the active airtime policy.
func (s *Scheduler) Policy() PolicyName { return s.policy.Name() }

// Share returns this session's airtime multiplier at virtual time t: 1
// inside its own TDMA sub-slot, 0 outside — including the window-head
// pose-uplink reservation, during which no session's downlink is on the
// air. Slot order rotates window to window, so a player's slot sweeps
// every phase of the frame cadence over a session, and the sub-slots of
// body-blocked players are redistributed to the active ones.
func (s *Scheduler) Share(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	if win := int64(t / s.period); win != s.winIdx {
		s.computeWindow(win)
	}
	if t < s.upEnd {
		return 0 // pose-uplink reservation holds the medium
	}
	if s.selfActive && t >= s.slotStart && t < s.slotEnd {
		return 1
	}
	return 0
}

// Wrap composes the schedule into a link-rate function: the wrapped rate
// is the underlying link rate during this session's slots and zero while
// another player holds the medium (or the pose uplink does).
func (s *Scheduler) Wrap(rate stream.RateFunc) stream.RateFunc {
	return func(now time.Duration) float64 {
		return rate(now) * s.Share(now)
	}
}

// HasExtInterference reports whether the room carries an external-
// interference input (a venue bay with co-channel neighbors).
func (s *Scheduler) HasExtInterference() bool { return len(s.ext) > 0 }

// ExtPenaltyDB returns the external (cross-bay) SINR penalty in dB at
// virtual time t: the room's interference table indexed by t's
// scheduling window, 0 when the room carries none or the window is
// past the table. It is a pure per-window lookup — it neither touches
// nor advances the cached window, so calling it never perturbs
// schedule evaluation order.
func (s *Scheduler) ExtPenaltyDB(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	win := int64(t / s.period)
	if win < 0 || win >= int64(len(s.ext)) {
		return 0
	}
	return s.ext[win]
}

// shareScale returns the integer weight scale policy share fractions
// are quantized to before the sub-slot boundaries are computed. Integer
// boundary arithmetic keeps the partition exact — the last slot ends on
// the next window to the nanosecond — and makes equal shares reproduce
// the historical round-robin boundaries bit for bit (the scale factor
// cancels). The scale is the downlink span itself (in nanoseconds)
// whenever that cannot overflow the boundary products, so a policy that
// returns slot widths — the deadline-aware policy, whose boundaries
// must land exactly on the frame grid — round-trips them untouched.
func shareScale(down time.Duration) int64 {
	scale := int64(down)
	if lim := (int64(1) << 62) / scale; scale > lim {
		scale = lim
	}
	return scale
}

// computeWindow fills the cached window for win: from the room's
// precomputed Geometry when one covers it, otherwise by running the
// live layout. Both paths execute the identical integer arithmetic
// (the geometry table is recorded from layoutWindow), so a session's
// schedule is bit-identical with and without a room snapshot.
func (s *Scheduler) computeWindow(win int64) {
	s.winIdx = win
	if g := s.geo; g != nil && win >= 0 && win < g.nWins {
		base := int(win) * len(s.players)
		s.upEnd = g.upEnds[win]
		s.selfActive = g.active[base+s.self]
		s.slotStart = g.starts[base+s.self]
		s.slotEnd = g.ends[base+s.self]
	} else {
		s.upEnd = s.layoutWindow(win, s.actAll, s.startAll, s.endAll)
		s.selfActive = s.actAll[s.self]
		s.slotStart, s.slotEnd = s.startAll[s.self], s.endAll[s.self]
	}
	s.emitWindow(win)
}

// emitWindow records the freshly computed window. Streaming runs query
// time monotonically, so each window is computed — and therefore
// emitted — exactly once, in order, on both the snapshot and live
// paths; the event file is independent of which path served it.
func (s *Scheduler) emitWindow(win int64) {
	if s.obs == nil || win < 0 {
		return
	}
	start := s.period * time.Duration(win)
	received := 0.0
	if s.selfActive {
		s.obs.EmitAt(start, obs.KindSlotGrant, int32(win), 0, s.slotStart.Seconds(), s.slotEnd.Seconds())
		received = float64(s.slotEnd-s.slotStart) / float64(s.period)
	} else {
		s.obs.EmitAt(start, obs.KindSlotReclaim, int32(win), 0, 0, 0)
	}
	s.obs.EmitAt(start, obs.KindAirtime, int32(win), 0, received, s.entitled)
	if len(s.ext) > 0 {
		pen := 0.0
		if win < int64(len(s.ext)) {
			pen = s.ext[win]
		}
		s.obs.EmitAt(start, obs.KindBayInterference, int32(win), 0, pen, 0)
	}
}

// layoutWindow evaluates the active set at the start of window win,
// reserves the pose-uplink sub-slots, and asks the policy to size the
// active players' shares of the remaining downlink span. Sub-slots are
// laid out contiguously in cyclic player order from the window's
// rotation offset; blocked players get nothing — their airtime is
// reclaimed. When every player is blocked there is nothing to reclaim
// and the active set falls back to everyone.
//
// The full layout — every player's sub-slot, not just Self's — is
// written into active/starts/ends (each len(players); a player with no
// slot gets active=false and zero boundaries) and the end of the
// window's uplink reservation is returned. This is the single source
// of schedule truth: the per-session cache and the room-owned Geometry
// table are both filled from it.
func (s *Scheduler) layoutWindow(win int64, active []bool, starts, ends []time.Duration) time.Duration {
	start := s.period * time.Duration(win)

	n := len(s.players)
	for i, tr := range s.players {
		s.poses[i] = tr.At(start).Pos
	}
	nActive := 0
	for i := range s.players {
		s.activeSet[i] = s.losClear(s.poses, i)
		if s.activeSet[i] {
			nActive++
		}
	}
	if nActive == 0 {
		for i := range s.activeSet {
			s.activeSet[i] = true
		}
		nActive = n
	}

	// The pose-uplink reservation at the window head: one sub-slot per
	// active player (blocked players report nothing worth airtime), all
	// downlink slots shifted past it.
	up := s.uplink * time.Duration(nActive)
	upEnd := start + up
	down := s.period - up

	w := &s.win
	w.Index, w.Start, w.DownStart, w.Downlink, w.Frame = win, start, upEnd, down, s.frame
	w.Poses, w.Active, w.NActive, w.Weights = s.poses, s.activeSet, nActive, s.weights
	w.ExtPenaltyDB = 0
	if win >= 0 && win < int64(len(s.ext)) {
		w.ExtPenaltyDB = s.ext[win]
	}

	for i := range s.shares {
		s.shares[i] = 0
	}
	s.policy.Shares(w, s.shares)

	// Sanitize the policy output: inactive players hold no air whatever
	// the policy says, and non-finite or non-positive shares are "no
	// slot". A policy that zeroes everyone degrades to the even split.
	sum := 0.0
	for i := range s.shares {
		if !s.activeSet[i] || !(s.shares[i] > 0) || math.IsInf(s.shares[i], 0) {
			s.shares[i] = 0
		}
		sum += s.shares[i]
	}
	if sum <= 0 {
		for i := range s.shares {
			if s.activeSet[i] {
				s.shares[i] = 1
				sum++
			}
		}
	}

	// Lay the sub-slots out in cyclic order from the rotation offset,
	// boundaries computed from the window span so the slots partition
	// [upEnd, start+period) exactly — the same full-coverage rule
	// stream.Run uses. Every session derives the identical layout from
	// the shared traces, so recording all players' boundaries here (for
	// the Geometry table) and reading back only Self's (per session)
	// commute.
	off := int(win % int64(n))
	scale := float64(shareScale(down))
	var cum int64
	for o := 0; o < n; o++ {
		i := (off + o) % n
		var wi int64
		if s.shares[i] > 0 {
			wi = int64(math.Round(scale * s.shares[i] / sum))
			if wi == 0 {
				wi = 1
			}
		}
		s.wis[i] = wi
		cum += wi
	}
	var c int64
	for o := 0; o < n; o++ {
		i := (off + o) % n
		wi := s.wis[i]
		if wi == 0 || cum == 0 {
			active[i], starts[i], ends[i] = false, 0, 0
			continue
		}
		active[i] = true
		starts[i] = upEnd + down*time.Duration(c)/time.Duration(cum)
		ends[i] = upEnd + down*time.Duration(c+wi)/time.Duration(cum)
		c += wi
	}
	return upEnd
}

// losClear reports whether player i's direct path from the AP is clear
// of every other player's body disc — the idle-reclaim activity test.
// It deliberately ignores walls and furniture: the question is whether
// the *other players* have shadowed this one, which is the signal the
// room's scheduler can read from tracking data alone.
func (s *Scheduler) losClear(poses []geom.Vec, i int) bool {
	seg := geom.Seg(s.ap, poses[i])
	for j := range poses {
		if j == i {
			continue
		}
		body := geom.Circle{C: poses[j], R: s.radius}
		if body.IntersectsSegment(seg) {
			return false
		}
	}
	return true
}

// qualityOf returns player i's geometric link quality at the start of
// the given window: an AP-proximity factor 1/(1+d²) discounted hard when
// the player's direct path is body-blocked. It is a pure function of the
// window index and the room's traces — the only link-state signal a
// purely tracking-driven scheduler can read — and uses the lookback pose
// scratch so policies can consult past windows while the current
// window's poses stay live.
func (s *Scheduler) qualityOf(win int64, i int) float64 {
	if win < 0 {
		win = 0
	}
	start := s.period * time.Duration(win)
	for j, tr := range s.players {
		s.lbPoses[j] = tr.At(start).Pos
	}
	return s.lbQuality(i)
}

// lbQuality evaluates one player's quality over the poses currently in
// the lookback scratch.
func (s *Scheduler) lbQuality(i int) float64 {
	d := s.ap.Dist(s.lbPoses[i])
	q := 1 / (1 + d*d)
	if !s.losClear(s.lbPoses, i) {
		q *= blockedQuality
	}
	return q
}

// recentQualityInto fills q with every player's mean geometric link
// quality over the trailing qualityLookback windows ending at win — the
// bulk form the proportional-fair policy runs every window: each
// lookback window's poses are evaluated once for all players, instead
// of once per player as chaining Window.RecentQuality would.
func (s *Scheduler) recentQualityInto(win int64, q []float64) {
	lo := win - qualityLookback + 1
	if lo < 0 {
		lo = 0
	}
	for i := range q {
		q[i] = 0
	}
	for k := lo; k <= win; k++ {
		start := s.period * time.Duration(k)
		for j, tr := range s.players {
			s.lbPoses[j] = tr.At(start).Pos
		}
		for i := range q {
			q[i] += s.lbQuality(i)
		}
	}
	n := float64(win - lo + 1)
	for i := range q {
		q[i] /= n
	}
}
