package coex

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// Geometry is a room-owned snapshot of everything geometric the room's
// sessions would otherwise each rederive per tick: every player's pose
// sampled on the world-tick grid, and the complete TDMA window schedule
// (uplink reservation plus every player's downlink sub-slot) over the
// room's horizon. It is built once per room — BuildGeometry runs the
// same trace lookups and the same window layout the per-session
// schedulers run live — and then shared read-only by all co-located
// sessions, so N sessions in a bay evaluate the airtime policy once per
// window instead of N times.
//
// Determinism contract: a schedule read from a Geometry is bit-identical
// to one evaluated live, because the table is recorded from the very
// function (Scheduler.layoutWindow) the live path executes, and pose
// lookups only answer on the exact tick grid they were sampled on —
// off-grid or out-of-horizon queries report a miss and the caller falls
// back to the trace itself.
type Geometry struct {
	// Room configuration the snapshot was built for, with defaults
	// resolved; NewScheduler rejects a Geometry whose configuration
	// does not match the session's room exactly.
	players []vr.Trace
	ap      geom.Vec
	period  time.Duration
	radius  float64
	uplink  time.Duration
	frame   time.Duration
	policy  PolicyName
	weights []float64

	// Pose table: players' positions on the [0, horizon] grid of step
	// multiples, player-major within each tick.
	step   time.Duration
	nTicks int
	poses  []geom.Vec

	// Window schedule table: for each window, the end of its uplink
	// reservation and every player's downlink sub-slot (active=false
	// when the player's airtime was reclaimed or sized to nothing).
	// All three per-player arrays are window-major.
	nWins  int64
	upEnds []time.Duration
	active []bool
	starts []time.Duration
	ends   []time.Duration
}

// BuildGeometry precomputes the room snapshot for rm as seen from the
// AP at ap: poses on the step grid and window schedules out to horizon.
// step is the world-tick cadence the sessions advance geometry at, and
// horizon the session duration; both must be positive. rm.Geometry is
// ignored (a snapshot is always built from the traces, never from
// another snapshot).
func BuildGeometry(rm Room, ap geom.Vec, step, horizon time.Duration) (*Geometry, error) {
	if step <= 0 {
		return nil, fmt.Errorf("coex: geometry step %v must be positive", step)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("coex: geometry horizon %v must be positive", horizon)
	}
	rm.Geometry = nil
	s, err := NewScheduler(rm, ap)
	if err != nil {
		return nil, err
	}

	n := len(s.players)
	g := &Geometry{
		players: s.players,
		ap:      s.ap,
		period:  s.period,
		radius:  s.radius,
		uplink:  s.uplink,
		frame:   s.frame,
		policy:  s.policy.Name(),
		weights: s.weights,
		step:    step,
		nTicks:  int(horizon/step) + 1,
	}

	g.poses = make([]geom.Vec, g.nTicks*n)
	for k := 0; k < g.nTicks; k++ {
		t := step * time.Duration(k)
		for i, tr := range s.players {
			g.poses[k*n+i] = tr.At(t).Pos
		}
	}

	g.nWins = int64(horizon/s.period) + 1
	g.upEnds = make([]time.Duration, g.nWins)
	g.active = make([]bool, int(g.nWins)*n)
	g.starts = make([]time.Duration, int(g.nWins)*n)
	g.ends = make([]time.Duration, int(g.nWins)*n)
	for w := int64(0); w < g.nWins; w++ {
		base := int(w) * n
		g.upEnds[w] = s.layoutWindow(w,
			g.active[base:base+n], g.starts[base:base+n], g.ends[base:base+n])
	}
	return g, nil
}

// Players returns the number of players the snapshot covers.
func (g *Geometry) Players() int { return len(g.players) }

// Windows returns the number of scheduling windows in the table.
func (g *Geometry) Windows() int64 { return g.nWins }

// Step returns the pose-table tick cadence.
func (g *Geometry) Step() time.Duration { return g.step }

// Period returns the scheduling window length the snapshot was built
// with (defaults resolved).
func (g *Geometry) Period() time.Duration { return g.period }

// SlotAt returns player i's downlink sub-slot of window win in absolute
// virtual time, and whether the player holds one (active=false when its
// airtime was reclaimed or sized to nothing, or the query is out of the
// table's range). The venue layer reads neighboring bays' transmit
// activity through this: which player the bay's AP serves when, without
// re-running the airtime policy.
func (g *Geometry) SlotAt(win int64, i int) (start, end time.Duration, active bool) {
	if win < 0 || win >= g.nWins || i < 0 || i >= len(g.players) {
		return 0, 0, false
	}
	k := int(win)*len(g.players) + i
	return g.starts[k], g.ends[k], g.active[k]
}

// PoseAt returns player i's position at virtual time t, answered from
// the pose table. The second return is false — and the caller must fall
// back to the player's trace — when t is off the snapshot's tick grid,
// beyond its horizon, or i is out of range; the table only answers
// queries it can answer bit-identically to the trace.
func (g *Geometry) PoseAt(i int, t time.Duration) (geom.Vec, bool) {
	if i < 0 || i >= len(g.players) || t < 0 || t%g.step != 0 {
		return geom.Vec{}, false
	}
	k := int(t / g.step)
	if k >= g.nTicks {
		return geom.Vec{}, false
	}
	return g.poses[k*len(g.players)+i], true
}

// PosesAtTick returns the full pose row — every player's position — for
// one tick, without copying: index the row by player number. It answers
// exactly when PoseAt would (t on the tick grid, within the horizon),
// so row[i] is bitwise PoseAt(i, t). The bay-batched runner fetches the
// row once per room-tick instead of querying per (player, peer) pair.
// The returned slice aliases the snapshot; callers must not modify it.
func (g *Geometry) PosesAtTick(t time.Duration) ([]geom.Vec, bool) {
	if t < 0 || t%g.step != 0 {
		return nil, false
	}
	k := int(t / g.step)
	if k >= g.nTicks {
		return nil, false
	}
	n := len(g.players)
	return g.poses[k*n : (k+1)*n], true
}

// tracesEqual compares two motion traces by content: the same samples
// in the same order, regardless of backing storage. Sessions substitute
// their own regenerated copy of their trace at Self, so pointer
// equality would spuriously reject every session's room.
func tracesEqual(a, b vr.Trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// check verifies the snapshot was built for exactly the configuration
// scheduler s resolved from its room, so a stale or mismatched snapshot
// fails at construction instead of silently skewing the schedule. The
// external-interference input is deliberately not compared: venue
// snapshots are built before the per-bay penalties exist, and the
// schedule tables are invariant to the input (see Room.ExtSINRPenaltyDB).
func (g *Geometry) check(s *Scheduler) error {
	if len(g.players) != len(s.players) {
		return fmt.Errorf("coex: geometry built for %d players, room has %d", len(g.players), len(s.players))
	}
	if g.ap != s.ap {
		return fmt.Errorf("coex: geometry built for AP at %v, room's AP is at %v", g.ap, s.ap)
	}
	if g.period != s.period || g.uplink != s.uplink || g.frame != s.frame || g.radius != s.radius {
		return fmt.Errorf("coex: geometry timing/radius configuration does not match the room")
	}
	if g.policy != s.policy.Name() {
		return fmt.Errorf("coex: geometry built for policy %q, room uses %q", g.policy, s.policy.Name())
	}
	if (g.weights == nil) != (s.weights == nil) || len(g.weights) != len(s.weights) {
		return fmt.Errorf("coex: geometry weights do not match the room")
	}
	for i := range g.weights {
		if g.weights[i] != s.weights[i] {
			return fmt.Errorf("coex: geometry weight %d (%v) does not match the room (%v)", i, g.weights[i], s.weights[i])
		}
	}
	for i := range g.players {
		if !tracesEqual(g.players[i], s.players[i]) {
			return fmt.Errorf("coex: geometry trace for player %d does not match the room", i)
		}
	}
	return nil
}
