package coex

import (
	"math"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// movingRoom generates a seeded 4-player room of walking traces in the
// arcade bay footprint — the workload the fleet coex scenario runs.
func movingRoom(t *testing.T, seed int64, players int, dur time.Duration) []vr.Trace {
	t.Helper()
	traces := make([]vr.Trace, players)
	for i := range traces {
		cfg := vr.DefaultTraceConfig(8, 8, seed+int64(i)*977)
		cfg.Duration = dur
		tr, err := vr.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = tr
	}
	return traces
}

// referenceRRWindow is a frozen copy of the pre-policy scheduler's
// computeWindow (round-robin even split with idle-reclaim), kept as the
// byte-identity oracle for the default policy: whatever the policy
// machinery does, PolicyRR must reproduce these sub-slot boundaries
// exactly.
func referenceRRWindow(s *Scheduler, win int64) (active bool, slotStart, slotEnd time.Duration) {
	start := s.period * time.Duration(win)
	n := len(s.players)
	poses := make([]geom.Vec, n)
	for i, tr := range s.players {
		poses[i] = tr.At(start).Pos
	}
	act := make([]bool, n)
	nActive := 0
	for i := range s.players {
		act[i] = s.losClear(poses, i)
		if act[i] {
			nActive++
		}
	}
	if nActive == 0 {
		for i := range act {
			act[i] = true
		}
		nActive = n
	}
	if !act[s.self] {
		return false, 0, 0
	}
	rank := 0
	for off := 0; off < n; off++ {
		i := (int(win%int64(n)) + off) % n
		if i == s.self {
			break
		}
		if act[i] {
			rank++
		}
	}
	slotStart = start + s.period*time.Duration(rank)/time.Duration(nActive)
	slotEnd = start + s.period*time.Duration(rank+1)/time.Duration(nActive)
	return true, slotStart, slotEnd
}

// TestRRByteIdenticalToFrozenReference pins the tentpole's contract:
// the default policy's schedule is bit-identical to the pre-refactor
// round-robin scheduler, window by window, over seeded moving rooms.
func TestRRByteIdenticalToFrozenReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		players := movingRoom(t, seed, 4, 3*time.Second)
		for self := range players {
			s := mustScheduler(t, Room{Players: players, Self: self})
			for win := int64(0); win < 60; win++ {
				wantActive, wantStart, wantEnd := referenceRRWindow(s, win)
				s.computeWindow(win)
				if s.selfActive != wantActive {
					t.Fatalf("seed %d self %d win %d: active = %v, want %v", seed, self, win, s.selfActive, wantActive)
				}
				if wantActive && (s.slotStart != wantStart || s.slotEnd != wantEnd) {
					t.Fatalf("seed %d self %d win %d: slot [%v,%v), want [%v,%v)",
						seed, self, win, s.slotStart, s.slotEnd, wantStart, wantEnd)
				}
			}
		}
	}
}

// TestAirtimeConservation is the partition property every policy must
// uphold: in every scheduling window of every seeded room, the active
// players' sub-slots tile the window exactly — no overlap, no gap — and
// their widths sum to the window span minus the pose-uplink reservation.
func TestAirtimeConservation(t *testing.T) {
	type slot struct{ start, end time.Duration }
	for _, policy := range Policies() {
		for _, uplink := range []time.Duration{0, 500 * time.Microsecond} {
			for _, seed := range []int64{1, 7} {
				players := movingRoom(t, seed, 4, 2*time.Second)
				weights := []float64{1, 2, 1, 3}
				scheds := make([]*Scheduler, len(players))
				for self := range players {
					scheds[self] = mustScheduler(t, Room{
						Players:    players,
						Self:       self,
						Policy:     policy,
						Weights:    weights,
						UplinkSlot: uplink,
					})
				}
				for win := int64(0); win < 40; win++ {
					start := DefaultPeriod * time.Duration(win)
					end := start + DefaultPeriod
					var slots []slot
					upEnd := time.Duration(-1)
					for _, s := range scheds {
						s.computeWindow(win)
						if upEnd < 0 {
							upEnd = s.upEnd
						} else if s.upEnd != upEnd {
							t.Fatalf("%s seed %d win %d: sessions disagree on the uplink reservation (%v vs %v)",
								policy, seed, win, s.upEnd, upEnd)
						}
						if !s.selfActive {
							continue
						}
						slots = append(slots, slot{s.slotStart, s.slotEnd})
					}
					if len(slots) == 0 {
						t.Fatalf("%s seed %d win %d: no player holds the medium", policy, seed, win)
					}
					// Sort the (few) slots by start.
					for i := 1; i < len(slots); i++ {
						for j := i; j > 0 && slots[j].start < slots[j-1].start; j-- {
							slots[j], slots[j-1] = slots[j-1], slots[j]
						}
					}
					if slots[0].start != upEnd {
						t.Fatalf("%s seed %d win %d: first slot starts at %v, want the uplink end %v",
							policy, seed, win, slots[0].start, upEnd)
					}
					total := time.Duration(0)
					for i, sl := range slots {
						if sl.end < sl.start || sl.start < start || sl.end > end {
							t.Fatalf("%s seed %d win %d: slot [%v,%v) escapes window [%v,%v)",
								policy, seed, win, sl.start, sl.end, start, end)
						}
						if i > 0 && sl.start != slots[i-1].end {
							t.Fatalf("%s seed %d win %d: gap or overlap between %v and %v",
								policy, seed, win, slots[i-1].end, sl.start)
						}
						total += sl.end - sl.start
					}
					if last := slots[len(slots)-1].end; last != end {
						t.Fatalf("%s seed %d win %d: last slot ends at %v, want the window end %v",
							policy, seed, win, last, end)
					}
					if want := end - upEnd; total != want {
						t.Fatalf("%s seed %d win %d: slots cover %v, want span-minus-uplink %v",
							policy, seed, win, total, want)
					}
				}
			}
		}
	}
}

// TestComputeWindowAllocationFree pins the zero-alloc discipline: after
// construction, advancing the schedule across windows — the per-window
// policy evaluation included — allocates nothing, for every policy,
// with weights and the uplink reservation enabled.
func TestComputeWindowAllocationFree(t *testing.T) {
	players := movingRoom(t, 7, 4, 3*time.Second)
	for _, policy := range Policies() {
		s := mustScheduler(t, Room{
			Players:    players,
			Self:       1,
			Policy:     policy,
			Weights:    []float64{1, 2, 1, 3},
			UplinkSlot: 200 * time.Microsecond,
		})
		s.Share(0) // warm the first window
		at := time.Duration(0)
		allocs := testing.AllocsPerRun(50, func() {
			at += 7 * time.Millisecond // crosses a window boundary most runs
			s.Share(at)
		})
		if allocs != 0 {
			t.Errorf("policy %s: Share allocates %v times per window advance, want 0", policy, allocs)
		}
	}
}

// TestUplinkReservationLowersDownlinkAirtime pins the uplink model's
// acceptance property: reserving a pose sub-slot per player strictly
// lowers every session's downlink airtime, by exactly the reservation
// when everyone stays active.
func TestUplinkReservationLowersDownlinkAirtime(t *testing.T) {
	players := movingRoom(t, 7, 4, 2*time.Second)
	for _, policy := range Policies() {
		for self := range players {
			plain := mustScheduler(t, Room{Players: players, Self: self, Policy: policy})
			up := mustScheduler(t, Room{Players: players, Self: self, Policy: policy, UplinkSlot: time.Millisecond})
			got, want := shareIntegral(up, 2*time.Second), shareIntegral(plain, 2*time.Second)
			if !(got < want) {
				t.Errorf("policy %s self %d: airtime with uplink = %v, want strictly below %v",
					policy, self, got, want)
			}
		}
	}
	// A reservation that leaves no downlink airtime is a config error.
	if _, err := NewScheduler(Room{
		Players:    []vr.Trace{standing(geom.V(4, 4)), standing(geom.V(2, 6))},
		UplinkSlot: 25 * time.Millisecond,
	}, apPos); err == nil {
		t.Error("NewScheduler accepted an uplink reservation that swallows the whole window")
	}
}

// TestWeightsSkewAirtime pins the per-player weight support shared by
// every policy: a weight-3 player holds roughly three times the airtime
// of a weight-1 peer under round-robin, and weights are validated.
func TestWeightsSkewAirtime(t *testing.T) {
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6))}
	heavy := mustScheduler(t, Room{Players: players, Self: 0, Weights: []float64{3, 1}})
	light := mustScheduler(t, Room{Players: players, Self: 1, Weights: []float64{3, 1}})
	h, l := shareIntegral(heavy, time.Second), shareIntegral(light, time.Second)
	if math.Abs(h-0.75) > 0.01 || math.Abs(l-0.25) > 0.01 {
		t.Errorf("weighted shares = %v/%v, want 0.75/0.25", h, l)
	}

	bad := []Room{
		{Players: players, Weights: []float64{1}},     // wrong length
		{Players: players, Weights: []float64{1, 0}},  // zero weight
		{Players: players, Weights: []float64{1, -2}}, // negative
		{Players: players, Weights: []float64{1, math.NaN()}},
		{Players: players, Weights: []float64{1, math.Inf(1)}},
		{Players: players, UplinkSlot: -time.Millisecond}, // negative uplink
		{Players: players, Policy: "fifo"},                // unknown policy
	}
	for i, rm := range bad {
		if _, err := NewScheduler(rm, apPos); err == nil {
			t.Errorf("case %d: NewScheduler accepted an invalid room", i)
		}
	}
}

// TestPolicyRoundTrip pins the policy vocabulary surface shared by the
// CLI and the job API.
func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyRR {
		t.Errorf("ParsePolicy(\"\") = %q, %v, want the rr default", p, err)
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	players := movingRoom(t, 1, 2, time.Second)
	for _, p := range Policies() {
		s := mustScheduler(t, Room{Players: players, Policy: p})
		if s.Policy() != p {
			t.Errorf("Scheduler.Policy() = %q, want %q", s.Policy(), p)
		}
	}
}

// TestEDFBoundariesOnDeadlineGrid pins the deadline-aware policy's
// defining property end to end through the scheduler's integer slot
// layout: every interior sub-slot boundary lands exactly on the
// display's absolute frame-deadline grid — to the nanosecond, not
// merely near it — so no boundary ever splits a frame interval.
func TestEDFBoundariesOnDeadlineGrid(t *testing.T) {
	players := movingRoom(t, 7, 4, 2*time.Second)
	frame := vr.HTCVive().FrameInterval()
	scheds := make([]*Scheduler, len(players))
	for self := range players {
		scheds[self] = mustScheduler(t, Room{Players: players, Self: self, Policy: PolicyEDF})
	}
	interior := 0
	for win := int64(0); win < 40; win++ {
		start := DefaultPeriod * time.Duration(win)
		end := start + DefaultPeriod
		for _, s := range scheds {
			s.computeWindow(win)
			if !s.selfActive {
				continue
			}
			for _, b := range []time.Duration{s.slotStart, s.slotEnd} {
				if b == start || b == end {
					continue // the window edges bound the outer slots
				}
				interior++
				if b%frame != 0 {
					t.Fatalf("win %d: boundary %v is %v off the frame-deadline grid",
						win, b, b%frame)
				}
			}
		}
	}
	if interior == 0 {
		t.Fatal("no interior slot boundaries exercised")
	}
}

// TestEDFWeightsSkewAirtime pins the weight contract on the
// deadline-aware policy: long-run airtime tracks the weights even
// though grants are quantized to whole frame intervals, and extreme
// weight ratios neither starve the light player nor hand it sub-frame
// sliver slots (its entitlement accrues until a whole usable frame
// rolls over).
func TestEDFWeightsSkewAirtime(t *testing.T) {
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6))}
	heavy := mustScheduler(t, Room{Players: players, Self: 0, Policy: PolicyEDF, Weights: []float64{3, 1}})
	light := mustScheduler(t, Room{Players: players, Self: 1, Policy: PolicyEDF, Weights: []float64{3, 1}})
	h, l := shareIntegral(heavy, 5*time.Second), shareIntegral(light, 5*time.Second)
	if math.Abs(h-0.75) > 0.05 || math.Abs(l-0.25) > 0.05 {
		t.Errorf("edf weighted shares = %.3f/%.3f, want ≈0.75/0.25", h, l)
	}

	// A 1:99 ratio: the light player still collects real airtime — in
	// whole-frame grants, never slivers shorter than a frame interval.
	frame := vr.HTCVive().FrameInterval()
	tiny := mustScheduler(t, Room{Players: players, Self: 1, Policy: PolicyEDF, Weights: []float64{99, 1}})
	got := shareIntegral(tiny, 5*time.Second)
	if got <= 0 || got > 0.05 {
		t.Errorf("1%%-weight player airtime = %.4f, want a small positive share", got)
	}
	for win := int64(0); win < 100; win++ {
		tiny.computeWindow(win)
		if !tiny.selfActive {
			continue
		}
		if width := tiny.slotEnd - tiny.slotStart; width < frame {
			t.Fatalf("win %d: 1%%-weight player granted a %v sliver, below the %v frame interval", win, width, frame)
		}
	}
}

// TestPolicySchedulesDiverge sanity-checks that pf and edf are not
// silently rr: over a contended moving room their schedules differ from
// the round-robin baseline in at least one window.
func TestPolicySchedulesDiverge(t *testing.T) {
	players := movingRoom(t, 7, 4, 2*time.Second)
	for _, policy := range []PolicyName{PolicyPF, PolicyEDF} {
		rr := mustScheduler(t, Room{Players: players, Self: 0})
		alt := mustScheduler(t, Room{Players: players, Self: 0, Policy: policy})
		diverged := false
		for win := int64(0); win < 40 && !diverged; win++ {
			rr.computeWindow(win)
			alt.computeWindow(win)
			if rr.selfActive != alt.selfActive || rr.slotStart != alt.slotStart || rr.slotEnd != alt.slotEnd {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("policy %s produced the identical schedule to rr over 40 windows", policy)
		}
	}
}
