package coex_test

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// ExampleBuildGeometry builds a two-player shared room, precomputes its
// room-owned geometry snapshot, and reads one session's airtime shares
// from it. The snapshot is built once per room and shared by every
// co-located session; schedules read from it are bit-identical to live
// policy evaluation, and PoseAt answers only exact on-grid queries.
func ExampleBuildGeometry() {
	players := make([]vr.Trace, 2)
	for i := range players {
		cfg := vr.DefaultTraceConfig(5, 5, int64(100+i))
		cfg.Duration = 500 * time.Millisecond
		tr, err := vr.Generate(cfg)
		if err != nil {
			fmt.Println("trace:", err)
			return
		}
		players[i] = tr
	}
	rm := coex.Room{Players: players, Policy: coex.PolicyPF}
	ap := geom.V(0.4, 0.4)

	const step = 10 * time.Millisecond
	geo, err := coex.BuildGeometry(rm, ap, step, 500*time.Millisecond)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Printf("snapshot: %d players, %d windows, %v pose grid\n",
		geo.Players(), geo.Windows(), geo.Step())

	rm.Geometry = geo
	s, err := coex.NewScheduler(rm, ap)
	if err != nil {
		fmt.Println("scheduler:", err)
		return
	}
	for _, t := range []time.Duration{0, 30 * time.Millisecond, 60 * time.Millisecond} {
		fmt.Printf("share(%v) = %.2f\n", t, s.Share(t))
	}
	if _, ok := geo.PoseAt(0, 15*time.Millisecond); !ok {
		fmt.Println("PoseAt(15ms): off the 10ms grid, caller falls back to the trace")
	}
	// Output:
	// snapshot: 2 players, 11 windows, 10ms pose grid
	// share(0s) = 1.00
	// share(30ms) = 0.00
	// share(60ms) = 0.00
	// PoseAt(15ms): off the 10ms grid, caller falls back to the trace
}
