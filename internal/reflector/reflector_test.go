package reflector

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

func dev() *Reflector { return Default(geom.V(2.5, 5), 270) } // north wall, facing south

// lowIso returns a device whose isolation band overlaps the amplifier's
// gain range, so instability is reachable in tests.
func lowIso() *Reflector {
	cfg := DefaultConfig(geom.V(2.5, 5), 270)
	cfg.BaseIsolationDB = 40
	cfg.MinLeakageDB = 25
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// minLeakageBeam scans TX beam angles and returns the angle with the
// lowest leakage for the device's current RX beam.
func minLeakageBeam(r *Reflector) (angle, leakage float64) {
	leakage = math.Inf(1)
	for rel := -60.0; rel <= 60; rel++ {
		r.SetTXBeam(270 + rel)
		if l := r.LeakageDB(); l < leakage {
			leakage, angle = l, 270+rel
		}
	}
	r.SetTXBeam(angle)
	return angle, leakage
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig(geom.V(0, 0), 0)
	cfg.AntennaSeparationM = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero separation should fail")
	}
	cfg = DefaultConfig(geom.V(0, 0), 0)
	cfg.RXArray.Elements = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad rx array should fail")
	}
	cfg = DefaultConfig(geom.V(0, 0), 0)
	cfg.Amp.StepDB = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad amp should fail")
	}
}

func TestGeometry(t *testing.T) {
	r := dev()
	if !r.Pos().AlmostEqual(geom.V(2.5, 5), 1e-12) {
		t.Error("Pos wrong")
	}
	if r.MountDeg() != 270 {
		t.Error("MountDeg wrong")
	}
	// RX and TX arrays sit AntennaSeparationM apart along the wall.
	sep := r.RXPos().Dist(r.TXPos())
	if math.Abs(sep-0.06) > 1e-9 {
		t.Errorf("antenna separation = %v", sep)
	}
}

func TestBeamControl(t *testing.T) {
	r := dev()
	applied := r.SetRXBeam(250)
	if math.Abs(units.AngleDiffDeg(applied, 250)) > 1e-9 {
		t.Errorf("rx beam = %v", applied)
	}
	r.SetTXBeam(300)
	if math.Abs(units.AngleDiffDeg(r.TXBeamDeg(), 300)) > 1e-9 {
		t.Errorf("tx beam = %v", r.TXBeamDeg())
	}
	if math.Abs(units.AngleDiffDeg(r.RXBeamDeg(), 250)) > 1e-9 {
		t.Errorf("rx beam changed to %v", r.RXBeamDeg())
	}
	// SetBothBeams aligns both.
	r.SetBothBeams(280)
	if r.RXBeamDeg() != r.TXBeamDeg() {
		t.Error("SetBothBeams did not align beams")
	}
	// Beamwidth matches the array model (~10°).
	if bw := r.RXBeamwidthDeg(); bw < 8 || bw > 12 {
		t.Errorf("beamwidth = %v", bw)
	}
}

func TestLeakageRangeMatchesFig7(t *testing.T) {
	// Fig 7 shows isolation roughly 50-80 dB with ≥15 dB variation as
	// the TX beam sweeps. Our device should land in that regime.
	r := dev()
	for _, rxRel := range []float64{-40, -25, 0, 25, 40} {
		r.SetRXBeam(270 + rxRel)
		lo, hi := math.Inf(1), math.Inf(-1)
		for txRel := -50.0; txRel <= 50; txRel++ {
			r.SetTXBeam(270 + txRel)
			l := r.LeakageDB()
			lo = math.Min(lo, l)
			hi = math.Max(hi, l)
		}
		if lo < 30 || hi > 130 {
			t.Errorf("rxRel=%v: leakage range [%v, %v] out of plausible band", rxRel, lo, hi)
		}
		if hi-lo < 12 {
			t.Errorf("rxRel=%v: leakage variation %v dB, want ≥12 (Fig 7 shows ~20)", rxRel, hi-lo)
		}
	}
}

func TestLeakageDependsOnBothAngles(t *testing.T) {
	r := dev()
	r.SetRXBeam(270 - 20)
	r.SetTXBeam(270 + 10)
	l1 := r.LeakageDB()
	r.SetRXBeam(270 + 30)
	l2 := r.LeakageDB()
	if math.Abs(l1-l2) < 0.5 {
		t.Errorf("leakage should move with RX angle: %v vs %v", l1, l2)
	}
}

func TestStability(t *testing.T) {
	r := dev()
	r.SetBothBeams(270)
	l := r.LeakageDB()
	// Gain below leakage: stable.
	r.Amp().SetGainDB(l - 10)
	if !r.Stable() {
		t.Error("should be stable with 10 dB margin")
	}
	if r.LoopGainDB() >= 0 {
		t.Error("loop gain should be negative")
	}
	// Gain above leakage: unstable (if reachable within amp range).
	if l+5 <= r.Amp().Config().MaxGainDB {
		r.Amp().SetGainDB(l + 5)
		if r.Stable() {
			t.Error("should be unstable with gain above leakage")
		}
	}
}

func TestFeedbackFixedPointStable(t *testing.T) {
	r := dev()
	r.SetBothBeams(270)
	l := r.LeakageDB()
	r.Amp().SetGainDB(math.Min(l-10, r.Amp().Config().MaxGainDB))
	ext := -45.0
	eff := r.EffectiveAmpInputDBm(ext)
	// Small-signal regenerative boost: eff = ext / (1 - g/l) in linear;
	// with 10 dB margin that is < 0.5 dB above ext.
	if eff < ext || eff > ext+1 {
		t.Errorf("effective input = %v for ext %v", eff, ext)
	}
	if r.SaturatedAt(ext) {
		t.Error("should not saturate with margin")
	}
	// Output ≈ input + gain.
	out := r.OutputPowerDBm(ext)
	if math.Abs(out-(ext+r.Amp().GainDB())) > 1.5 {
		t.Errorf("output = %v, want ≈ %v", out, ext+r.Amp().GainDB())
	}
}

func TestFeedbackDrivesSaturationWhenUnstable(t *testing.T) {
	r := lowIso()
	r.SetRXBeam(270)
	_, l := minLeakageBeam(r)
	if l+2 > r.Amp().Config().MaxGainDB {
		t.Fatalf("low-isolation device leakage %v still beyond amp range", l)
	}
	r.Amp().SetGainDB(l + 2)
	ext := -60.0 // tiny external signal; instability must still rail it
	if !r.SaturatedAt(ext) {
		t.Error("unstable loop should saturate the amplifier")
	}
	// The current sensor must show the spike.
	iUnstable := r.SupplyCurrentA(ext)
	r.Amp().SetGainDB(l - 6)
	iStable := r.SupplyCurrentA(ext)
	if iUnstable < iStable+0.3 {
		t.Errorf("saturation current %v not clearly above stable %v", iUnstable, iStable)
	}
}

func TestLeakageSteeringChangesStability(t *testing.T) {
	// The §4.2 motivation: a gain that is safe at one beam setting can
	// be unsafe at another. Find two TX angles with very different
	// leakage and show a gain between them flips stability.
	r := lowIso()
	r.SetRXBeam(270)
	lo, hi := math.Inf(1), math.Inf(-1)
	loAng, hiAng := 0.0, 0.0
	for rel := -50.0; rel <= 50; rel += 1 {
		r.SetTXBeam(270 + rel)
		l := r.LeakageDB()
		if l < lo {
			lo, loAng = l, 270+rel
		}
		if l > hi {
			hi, hiAng = l, 270+rel
		}
	}
	mid := (lo + hi) / 2
	if mid > r.Amp().Config().MaxGainDB {
		t.Fatalf("mid leakage %v beyond amp range on low-isolation device", mid)
	}
	r.Amp().SetGainDB(mid)
	r.SetTXBeam(loAng)
	if r.Stable() {
		t.Errorf("gain %v should be unstable at leakage %v", mid, lo)
	}
	r.SetTXBeam(hiAng)
	if !r.Stable() {
		t.Errorf("gain %v should be stable at leakage %v", mid, hi)
	}
}

func TestThroughGain(t *testing.T) {
	r := dev()
	from, to := 250.0, 300.0
	r.SetRXBeam(from)
	r.SetTXBeam(to)
	r.Amp().SetGainDB(math.Min(r.LeakageDB()-8, r.Amp().Config().MaxGainDB))
	g, ok := r.ThroughGainDB(from, to, -50)
	if !ok {
		t.Fatal("through gain should be valid when stable")
	}
	// RX gain ~15 + amp gain + TX gain ~15.
	want := r.RXGainDBi(from) + r.Amp().GainDB() + r.TXGainDBi(to)
	if g != want {
		t.Errorf("through gain = %v, want %v", g, want)
	}
	if g < r.Amp().GainDB()+20 {
		t.Errorf("through gain %v should include both array gains", g)
	}
	// Unstable: no valid through gain (exercised on the low-isolation
	// device where instability is reachable).
	lr := lowIso()
	lr.SetRXBeam(270)
	_, l := minLeakageBeam(lr)
	lr.Amp().SetGainDB(l + 3)
	if _, ok := lr.ThroughGainDB(from, to, -50); ok {
		t.Error("unstable device should not have valid through gain")
	}
}

func TestModulation(t *testing.T) {
	r := dev()
	on, f := r.Modulating()
	if on || f != 0 {
		t.Error("should start unmodulated")
	}
	r.SetModulating(true, 100e3)
	on, f = r.Modulating()
	if !on || f != 100e3 {
		t.Error("modulation not applied")
	}
}

func TestRippleDeterministicPerSeed(t *testing.T) {
	cfg1 := DefaultConfig(geom.V(0, 0), 0)
	cfg2 := DefaultConfig(geom.V(0, 0), 0)
	r1a, _ := New(cfg1)
	r1b, _ := New(cfg1)
	cfg2.Seed = 99
	r2, _ := New(cfg2)
	r1a.SetBothBeams(20)
	r1b.SetBothBeams(20)
	r2.SetBothBeams(20)
	if r1a.LeakageDB() != r1b.LeakageDB() {
		t.Error("same seed should give identical leakage")
	}
	if r1a.LeakageDB() == r2.LeakageDB() {
		t.Error("different seeds should differ")
	}
}

func TestDisabledAmpPassesNothing(t *testing.T) {
	r := dev()
	r.Amp().SetEnabled(false)
	if !math.IsInf(r.OutputPowerDBm(-40), -1) {
		t.Error("disabled reflector should output nothing")
	}
	// Effective input equals external input when off (no feedback).
	if got := r.EffectiveAmpInputDBm(-40); got != -40 {
		t.Errorf("effective input with amp off = %v", got)
	}
}

// Property: leakage respects the configured floor everywhere.
func TestQuickLeakageFloor(t *testing.T) {
	r := dev()
	f := func(a, b float64) bool {
		r.SetRXBeam(270 + math.Mod(a, 75))
		r.SetTXBeam(270 + math.Mod(b, 75))
		return r.LeakageDB() >= r.cfg.MinLeakageDB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: effective amplifier input never falls below the external
// input (feedback only adds energy) and stays finite.
func TestQuickEffectiveInputBounds(t *testing.T) {
	r := dev()
	f := func(a, g float64) bool {
		ext := math.Mod(a, 50) - 60 // -110..-10 dBm
		r.Amp().SetGainDB(math.Abs(math.Mod(g, 60)))
		if math.IsNaN(ext) {
			return true
		}
		eff := r.EffectiveAmpInputDBm(ext)
		return eff >= ext-1e-9 && !math.IsNaN(eff) && !math.IsInf(eff, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: supply current with an unstable loop is always at least the
// current with a comfortably stable loop (same external input).
func TestQuickUnstableCurrentDominates(t *testing.T) {
	r := dev()
	f := func(a float64) bool {
		r.SetBothBeams(270 + math.Mod(a, 50))
		l := r.LeakageDB()
		maxG := r.Amp().Config().MaxGainDB
		if l+1 > maxG || l-8 < 0 {
			return true // cannot realize both regimes at this angle
		}
		ext := -55.0
		r.Amp().SetGainDB(l + 1)
		iHot := r.SupplyCurrentA(ext)
		r.Amp().SetGainDB(l - 8)
		iCold := r.SupplyCurrentA(ext)
		return iHot >= iCold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
