// Package reflector implements the MoVR device itself: "a configurable
// mmWave reflector... It acts as a programmable mirror that detects the
// direction of the incoming mmWave signal and reconfigures itself to
// reflect it toward the receiver on the headset" (§1).
//
// The device is two phased arrays joined by a variable-gain amplifier
// (Fig 4). It has no transmit or receive basebands: everything it does is
// set a receive beam, set a transmit beam, set an amplifier gain word, and
// toggle the amplifier for OOK modulation. Its only sensor is a DC
// current monitor on the amplifier supply.
//
// The central physical subtlety is the TX→RX antenna leakage: part of the
// amplified output couples back into the receive antenna, closing a
// positive feedback loop (Fig 6). The loop is stable only while the
// amplifier gain is below the leakage attenuation (G_dB − L_dB < 0); past
// that point the amplifier drives itself into saturation and the output
// is garbage. The leakage depends on both beam angles and swings by tens
// of dB (Fig 7), which is why MoVR needs the adaptive gain control of
// §4.2. This package simulates the loop literally — the effective
// amplifier input is the fixed point of the feedback iteration — so
// saturation, current spikes, and garbage output all emerge from the
// model.
package reflector

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/movr-sim/movr/internal/amplifier"
	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

// Config describes a MoVR reflector installation.
type Config struct {
	// Pos is the device's position (wall-mounted).
	Pos geom.Vec

	// MountDeg is the boresight direction of both arrays (into the
	// room, perpendicular to the wall).
	MountDeg float64

	// HeightM is the wall-mount height above the floor.
	HeightM float64

	// AntennaSeparationM is the on-board spacing between the RX and TX
	// arrays.
	AntennaSeparationM float64

	// RXArray and TXArray configure the two phased arrays. Their
	// OrientationDeg fields are overridden with MountDeg.
	RXArray, TXArray antenna.Config

	// Amp configures the variable-gain amplifier chain.
	Amp amplifier.Config

	// BaseIsolationDB is the mean TX→RX isolation of the board.
	BaseIsolationDB float64

	// SlowSwingDB and FastSwingDB bound the two scales of the
	// deterministic angle-dependent leakage variation: a slow envelope
	// and a fast ripple. Fig 7 measures total swings of ~20 dB; the
	// defaults reproduce that. Near-field coupling between co-located
	// arrays is not a far-field pattern product, so the model is
	// calibrated empirical structure rather than first-principles
	// (see DESIGN.md).
	SlowSwingDB, FastSwingDB float64

	// MinLeakageDB floors the total isolation; no physical board has
	// less.
	MinLeakageDB float64

	// Seed fixes the device-specific leakage pattern.
	Seed int64
}

// DefaultConfig returns a reflector configuration calibrated so leakage
// behaves like the paper's Fig 7: total isolation in the tens of dB with
// ≥15 dB swings across beam angles.
func DefaultConfig(pos geom.Vec, mountDeg float64) Config {
	return Config{
		Pos:                pos,
		MountDeg:           mountDeg,
		HeightM:            2.6,
		AntennaSeparationM: 0.06,
		RXArray:            antenna.DefaultConfig(mountDeg),
		TXArray:            antenna.DefaultConfig(mountDeg),
		Amp:                amplifier.DefaultConfig(),
		BaseIsolationDB:    60,
		SlowSwingDB:        8,
		FastSwingDB:        6,
		MinLeakageDB:       35,
		Seed:               1,
	}
}

// Reflector is a MoVR device.
type Reflector struct {
	cfg Config
	rx  *antenna.Array
	tx  *antenna.Array
	amp *amplifier.VGA

	modulating bool
	modFreqHz  float64

	ripple leakagePattern

	// Leakage memo: LeakageDB is a pure function of the two steering
	// angles (the pattern and config are fixed at construction), so the
	// last value is reused until either beam moves. The gain-control
	// scan calls LeakageDB once per probed gain word with the beams
	// still, which this collapses to one pattern evaluation per
	// steering change.
	leakKeyOK      bool
	leakTX, leakRX float64
	leakVal        float64

	// Feedback fixed-point memo: EffectiveAmpInputDBm is a pure
	// function of (external input, leakage, gain word). The scan
	// probes every word at one (ext, leakage) key, and the subsequent
	// saturation checks — and every passive re-read until the geometry
	// moves the drive level or a beam moves the leakage — re-ask for
	// words already solved. fpX caches the solved input per gain word;
	// fpValid is its per-word validity bitmap, cleared whenever the
	// (ext, leakage) key changes.
	fpKeyOK       bool
	fpExt, fpLeak float64
	fpValid       []uint64
	fpX           []float64
}

// New validates cfg and builds the device with both beams at boresight
// and the amplifier at minimum gain.
func New(cfg Config) (*Reflector, error) {
	if cfg.AntennaSeparationM <= 0 {
		return nil, fmt.Errorf("reflector: AntennaSeparationM %v must be positive", cfg.AntennaSeparationM)
	}
	cfg.RXArray.OrientationDeg = cfg.MountDeg
	cfg.TXArray.OrientationDeg = cfg.MountDeg
	rx, err := antenna.New(cfg.RXArray)
	if err != nil {
		return nil, fmt.Errorf("reflector: rx array: %w", err)
	}
	tx, err := antenna.New(cfg.TXArray)
	if err != nil {
		return nil, fmt.Errorf("reflector: tx array: %w", err)
	}
	amp, err := amplifier.New(cfg.Amp)
	if err != nil {
		return nil, fmt.Errorf("reflector: amplifier: %w", err)
	}
	return &Reflector{
		cfg:    cfg,
		rx:     rx,
		tx:     tx,
		amp:    amp,
		ripple: newLeakagePattern(cfg.Seed, cfg.SlowSwingDB, cfg.FastSwingDB),
	}, nil
}

// Default returns a reflector with DefaultConfig at pos facing mountDeg.
func Default(pos geom.Vec, mountDeg float64) *Reflector {
	r, err := New(DefaultConfig(pos, mountDeg))
	if err != nil {
		panic(err) // default config cannot fail
	}
	return r
}

// Pos returns the device position.
func (r *Reflector) Pos() geom.Vec { return r.cfg.Pos }

// MountDeg returns the wall-mount boresight direction.
func (r *Reflector) MountDeg() float64 { return r.cfg.MountDeg }

// HeightM returns the wall-mount height above the floor.
func (r *Reflector) HeightM() float64 { return r.cfg.HeightM }

// RXPos returns the receive array's position (offset along the wall).
func (r *Reflector) RXPos() geom.Vec {
	return geom.FromPolar(r.cfg.Pos, r.cfg.MountDeg+90, r.cfg.AntennaSeparationM/2)
}

// TXPos returns the transmit array's position.
func (r *Reflector) TXPos() geom.Vec {
	return geom.FromPolar(r.cfg.Pos, r.cfg.MountDeg-90, r.cfg.AntennaSeparationM/2)
}

// SetRXBeam steers the receive beam (the angle of incidence) to a world
// angle and returns the applied angle.
func (r *Reflector) SetRXBeam(worldDeg float64) float64 { return r.rx.SteerTo(worldDeg) }

// SetTXBeam steers the transmit beam (the angle of reflection) to a world
// angle and returns the applied angle.
func (r *Reflector) SetTXBeam(worldDeg float64) float64 { return r.tx.SteerTo(worldDeg) }

// SetBothBeams steers both arrays to the same world angle, as the
// alignment protocol requires ("first sets the reflector's receive and
// transmit beams to the same direction", §4.1).
func (r *Reflector) SetBothBeams(worldDeg float64) float64 {
	r.rx.SteerTo(worldDeg)
	return r.tx.SteerTo(worldDeg)
}

// RXBeamDeg returns the current receive-beam world angle.
func (r *Reflector) RXBeamDeg() float64 { return r.rx.SteeringDeg() }

// TXBeamDeg returns the current transmit-beam world angle.
func (r *Reflector) TXBeamDeg() float64 { return r.tx.SteeringDeg() }

// RXGainDBi returns the receive array's realized gain toward a world
// angle.
func (r *Reflector) RXGainDBi(worldDeg float64) float64 { return r.rx.GainDBi(worldDeg) }

// TXGainDBi returns the transmit array's realized gain toward a world
// angle.
func (r *Reflector) TXGainDBi(worldDeg float64) float64 { return r.tx.GainDBi(worldDeg) }

// RXBeamwidthDeg returns the receive array's half-power beamwidth.
func (r *Reflector) RXBeamwidthDeg() float64 { return r.rx.BeamwidthDeg() }

// Amp returns the amplifier chain for gain programming.
func (r *Reflector) Amp() *amplifier.VGA { return r.amp }

// SetModulating toggles the OOK modulation used during alignment, with
// the given modulation frequency (f2 in the paper's description).
func (r *Reflector) SetModulating(on bool, freqHz float64) {
	r.modulating = on
	r.modFreqHz = freqHz
}

// Modulating reports whether OOK modulation is active and at what
// frequency.
func (r *Reflector) Modulating() (bool, float64) { return r.modulating, r.modFreqHz }

// LeakageDB returns the TX→RX isolation (a positive attenuation in dB)
// for the current pair of beam angles: a base board isolation plus a
// deterministic, device-specific, smooth function of both steering
// angles. This reproduces the measured behaviour of Fig 7 — isolation in
// the tens of dB whose value swings by ~20 dB as either beam moves —
// without pretending the near-field coupling of two co-located arrays can
// be derived from their far-field patterns.
func (r *Reflector) LeakageDB() float64 {
	tx, rx := r.tx.SteeringDeg(), r.rx.SteeringDeg()
	if r.leakKeyOK && r.leakTX == tx && r.leakRX == rx {
		return r.leakVal
	}
	relTX := units.AngleDiffDeg(tx, r.cfg.MountDeg)
	relRX := units.AngleDiffDeg(rx, r.cfg.MountDeg)
	l := r.cfg.BaseIsolationDB + r.ripple.at(relTX, relRX)
	if l < r.cfg.MinLeakageDB {
		l = r.cfg.MinLeakageDB
	}
	r.leakKeyOK, r.leakTX, r.leakRX, r.leakVal = true, tx, rx, l
	return l
}

// LoopGainDB returns the closed-loop gain margin G_dB − L_dB; the device
// is stable while this is negative (§4.2's control-theory condition).
func (r *Reflector) LoopGainDB() float64 { return r.amp.GainDB() - r.LeakageDB() }

// Stable reports whether the feedback loop is small-signal stable at the
// current gain and beam angles.
func (r *Reflector) Stable() bool { return r.LoopGainDB() < 0 }

// feedbackIterations bounds the fixed-point iteration of the loop.
const feedbackIterations = 400

// EffectiveAmpInputDBm returns the amplifier's true input power once the
// leakage feedback settles, for an external (off-air) input power at the
// amplifier port. It is the fixed point of
//
//	x = ext + feedback(x),  feedback(x) = ampOut(x) − L
//
// computed in the linear power domain. Because the amplifier output is
// bounded by P_sat the iteration always converges; an unstable loop
// converges to a point deep in compression, which is exactly the physical
// "saturated, generating garbage" state.
func (r *Reflector) EffectiveAmpInputDBm(extDBm float64) float64 {
	if !r.amp.Enabled() {
		return extDBm
	}
	l := r.LeakageDB()
	w := r.amp.GainWord()
	if r.fpKeyOK && r.fpExt == extDBm && r.fpLeak == l {
		if r.fpValid[w>>6]&(1<<(uint(w)&63)) != 0 {
			return r.fpX[w]
		}
	} else {
		if r.fpX == nil {
			n := r.amp.Words()
			r.fpX = make([]float64, n)
			r.fpValid = make([]uint64, (n+63)/64)
		}
		for i := range r.fpValid {
			r.fpValid[i] = 0
		}
		r.fpKeyOK, r.fpExt, r.fpLeak = true, extDBm, l
	}
	v := r.solveFeedback(extDBm, l)
	r.fpX[w] = v
	r.fpValid[w>>6] |= 1 << (uint(w) & 63)
	return v
}

// solveFeedback runs the fixed-point iteration for the current gain word
// at the given external input and leakage — the uncached body of
// EffectiveAmpInputDBm.
func (r *Reflector) solveFeedback(extDBm, l float64) float64 {
	extMw := units.DBmToMilliwatts(extDBm)
	x := extMw
	for i := 0; i < feedbackIterations; i++ {
		out := r.amp.OutputPowerDBm(units.MilliwattsToDBm(x))
		fb := units.DBmToMilliwatts(out - l)
		next := extMw + fb
		if math.Abs(next-x) <= 1e-12*math.Max(x, 1e-30) {
			x = next
			break
		}
		x = next
	}
	return units.MilliwattsToDBm(x)
}

// OutputPowerDBm returns the amplifier output power (at the TX array
// port) for an external input power, including feedback effects.
func (r *Reflector) OutputPowerDBm(extDBm float64) float64 {
	return r.amp.OutputPowerDBm(r.EffectiveAmpInputDBm(extDBm))
}

// SaturatedAt reports whether the device output is garbage (amplifier
// compressed ≥1 dB) for the given external input, including feedback.
func (r *Reflector) SaturatedAt(extDBm float64) bool {
	return r.amp.Saturated(r.EffectiveAmpInputDBm(extDBm))
}

// SupplyCurrentA returns what the on-board current sensor reads for the
// given external input power — the only observable §4.2's algorithm has.
func (r *Reflector) SupplyCurrentA(extDBm float64) float64 {
	return r.amp.SupplyCurrentA(r.EffectiveAmpInputDBm(extDBm))
}

// ThroughGainDB returns the device's end-to-end small-signal gain for a
// signal arriving from world angle fromDeg and re-radiated toward world
// angle toDeg: RX array gain + amplifier gain + TX array gain. The second
// return is false when the device is currently unusable (unstable loop or
// amplifier saturated at this input), in which case the output is garbage
// rather than an amplified copy.
func (r *Reflector) ThroughGainDB(fromDeg, toDeg, extDBm float64) (float64, bool) {
	if !r.amp.Enabled() || !r.Stable() || r.SaturatedAt(extDBm) {
		return 0, false
	}
	return r.rx.GainDBi(fromDeg) + r.amp.GainDB() + r.tx.GainDBi(toDeg), true
}

// NoiseFigureDB returns the amplifier chain's noise figure, needed by the
// relay link-budget math.
func (r *Reflector) NoiseFigureDB() float64 { return r.cfg.Amp.NoiseFigureDB }

// leakagePattern is a smooth deterministic pseudo-random function of the
// two beam angles, structured the way Fig 7 presents the measurement: for
// any fixed RX angle, sweeping the TX beam moves the leakage through a
// slow envelope plus a fast ripple (together ~15-20 dB peak to peak), and
// changing the RX angle both shifts the overall level and reshapes the
// fast structure.
type leakagePattern struct {
	txSlow, txFast, rxShift patternTerm
}

type patternTerm struct {
	amp, ft, fr, phase float64
}

func (p patternTerm) eval(t, q float64) float64 {
	return p.amp * math.Sin(p.ft*t+p.fr*q+p.phase)
}

func newLeakagePattern(seed int64, slowAmp, fastAmp float64) leakagePattern {
	rng := rand.New(rand.NewSource(seed))
	term := func(amp, minFT, maxFT, minFR, maxFR float64) patternTerm {
		return patternTerm{
			amp:   amp,
			ft:    minFT + rng.Float64()*(maxFT-minFT),
			fr:    minFR + rng.Float64()*(maxFR-minFR),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	return leakagePattern{
		// Slow TX envelope: ~1 cycle across the scan range, weak RX pull.
		txSlow: term(slowAmp, 2.5, 4.5, 0.3, 1),
		// Fast TX ripple: several cycles across the scan, reshaped by RX.
		txFast: term(fastAmp, 9, 16, 1, 4),
		// RX-dependent level shift: function of RX angle only.
		rxShift: term(slowAmp*0.6, 2, 5, 0, 0),
	}
}

func (m leakagePattern) at(relTXDeg, relRXDeg float64) float64 {
	t := units.DegToRad(relTXDeg)
	q := units.DegToRad(relRXDeg)
	return m.txSlow.eval(t, q) + m.txFast.eval(t, q) + m.rxShift.eval(q, 0)
}
