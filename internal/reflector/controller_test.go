package reflector

import (
	"math"
	"testing"

	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
)

func ctl() (*Controller, *Reflector) {
	dev := Default(geom.V(2.5, 5), 270)
	return NewController(dev), dev
}

func TestControllerBeamCommands(t *testing.T) {
	c, dev := ctl()
	reply := c.HandleControl(control.Message{
		Type: control.MsgSetRXBeam, Value: control.AngleToWire(250),
	})
	if reply.Type != control.MsgAck {
		t.Fatalf("reply = %+v", reply)
	}
	if got := control.WireToAngle(reply.Value); math.Abs(got-250) > 0.1 {
		t.Errorf("acked angle = %v", got)
	}
	if math.Abs(dev.RXBeamDeg()-250) > 0.1 {
		t.Errorf("rx beam = %v", dev.RXBeamDeg())
	}

	c.HandleControl(control.Message{Type: control.MsgSetTXBeam, Value: control.AngleToWire(300)})
	if math.Abs(dev.TXBeamDeg()-300) > 0.1 {
		t.Errorf("tx beam = %v", dev.TXBeamDeg())
	}

	c.HandleControl(control.Message{Type: control.MsgSetBothBeams, Value: control.AngleToWire(280)})
	if dev.RXBeamDeg() != dev.TXBeamDeg() {
		t.Error("both-beams command did not align beams")
	}

	// Out-of-scan-range request: the ack reports the clamped angle.
	reply = c.HandleControl(control.Message{
		Type: control.MsgSetRXBeam, Value: control.AngleToWire(90), // opposite the mount
	})
	applied := control.WireToAngle(reply.Value)
	if math.Abs(applied-90) < 1 {
		t.Errorf("impossible angle should clamp, acked %v", applied)
	}
}

func TestControllerGainAndModulation(t *testing.T) {
	c, dev := ctl()
	reply := c.HandleControl(control.Message{Type: control.MsgSetGainWord, Value: 40})
	if reply.Type != control.MsgAck || reply.Value != 40 {
		t.Fatalf("gain reply = %+v", reply)
	}
	if dev.Amp().GainWord() != 40 {
		t.Errorf("gain word = %d", dev.Amp().GainWord())
	}
	// Oversized word: ack carries the clamped value.
	reply = c.HandleControl(control.Message{Type: control.MsgSetGainWord, Value: 100000})
	if int(reply.Value) != dev.Amp().Words()-1 {
		t.Errorf("clamped gain ack = %d", reply.Value)
	}

	c.HandleControl(control.Message{Type: control.MsgSetModulation, Value: 100000})
	if on, f := dev.Modulating(); !on || f != 100000 {
		t.Error("modulation on failed")
	}
	c.HandleControl(control.Message{Type: control.MsgSetModulation, Value: 0})
	if on, _ := dev.Modulating(); on {
		t.Error("modulation off failed")
	}
}

func TestControllerCurrentReadout(t *testing.T) {
	c, dev := ctl()
	c.AmbientInputDBm = -50
	dev.Amp().SetGainDB(20)
	reply := c.HandleControl(control.Message{Type: control.MsgReadCurrent})
	if reply.Type != control.MsgAck {
		t.Fatalf("reply = %+v", reply)
	}
	got := control.WireToCurrent(reply.Value)
	want := dev.SupplyCurrentA(-50)
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("current readout = %v, device draws %v", got, want)
	}
}

func TestControllerUnknownCommand(t *testing.T) {
	c, _ := ctl()
	reply := c.HandleControl(control.Message{Type: control.MsgType(200)})
	if reply.Type != control.MsgNack {
		t.Errorf("unknown command should Nack, got %+v", reply)
	}
}

func TestAccessors(t *testing.T) {
	_, dev := ctl()
	if dev.HeightM() != 2.6 {
		t.Errorf("HeightM = %v", dev.HeightM())
	}
	if dev.NoiseFigureDB() != 5 {
		t.Errorf("NoiseFigureDB = %v", dev.NoiseFigureDB())
	}
}
