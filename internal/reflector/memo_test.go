package reflector

import (
	"math/rand"
	"testing"

	"github.com/movr-sim/movr/internal/geom"
)

// The leakage and feedback fixed-point memos must be invisible: a device
// whose beams and gain words are driven through an arbitrary sequence of
// (steer, program, evaluate) operations must report bit-identical
// leakage, effective input, output power, and supply current to a fresh
// device evaluated cold at every step. This pins the memo keys — beam
// angles for the leakage cache, (external input, leakage, gain word) for
// the fixed-point cache — as exactly the inputs the underlying pure
// functions depend on.
func TestMemoizedEvaluationsBitIdentical(t *testing.T) {
	dev := Default(geom.V(4.6, 4.6), 225)
	rng := rand.New(rand.NewSource(42))

	for step := 0; step < 500; step++ {
		switch rng.Intn(4) {
		case 0:
			dev.SetTXBeam(rng.Float64() * 360)
		case 1:
			dev.SetRXBeam(rng.Float64() * 360)
		case 2:
			dev.Amp().SetGainWord(rng.Intn(dev.Amp().Words()))
		case 3:
			// Repeat evaluation at unchanged state: the memo-hit path.
		}
		ext := -60 + rng.Float64()*40

		// A cold reference device in the identical state, with no memo
		// history at all.
		ref := Default(geom.V(4.6, 4.6), 225)
		ref.SetTXBeam(dev.TXBeamDeg())
		ref.SetRXBeam(dev.RXBeamDeg())
		ref.Amp().SetGainWord(dev.Amp().GainWord())

		if got, want := dev.LeakageDB(), ref.LeakageDB(); got != want {
			t.Fatalf("step %d: LeakageDB memo %v != cold %v", step, got, want)
		}
		if got, want := dev.EffectiveAmpInputDBm(ext), ref.EffectiveAmpInputDBm(ext); got != want {
			t.Fatalf("step %d: EffectiveAmpInputDBm memo %v != cold %v", step, got, want)
		}
		if got, want := dev.SupplyCurrentA(ext), ref.SupplyCurrentA(ext); got != want {
			t.Fatalf("step %d: SupplyCurrentA memo %v != cold %v", step, got, want)
		}
		if got, want := dev.OutputPowerDBm(ext), ref.OutputPowerDBm(ext); got != want {
			t.Fatalf("step %d: OutputPowerDBm memo %v != cold %v", step, got, want)
		}
	}
}
