package reflector

import (
	"github.com/movr-sim/movr/internal/control"
)

// Controller is the reflector's on-board microcontroller (an Arduino Due
// in the prototype): it executes control-plane commands against the
// device hardware. The AmbientInputDBm field models the off-air power
// arriving at the amplifier input while commands execute, which the
// current sensor readout naturally reflects.
type Controller struct {
	Dev *Reflector

	// AmbientInputDBm is the external signal power at the amplifier
	// input used when a command needs a current reading. Experiments
	// update it as the AP's transmissions change.
	AmbientInputDBm float64
}

// NewController wraps a reflector device.
func NewController(dev *Reflector) *Controller {
	return &Controller{Dev: dev, AmbientInputDBm: -90}
}

// HandleControl implements control.Handler: it applies one command to the
// device and returns an Ack (with a reading where relevant) or a Nack for
// unknown commands.
func (c *Controller) HandleControl(m control.Message) control.Message {
	switch m.Type {
	case control.MsgSetRXBeam:
		applied := c.Dev.SetRXBeam(control.WireToAngle(m.Value))
		return control.Message{Type: control.MsgAck, Value: control.AngleToWire(applied)}
	case control.MsgSetTXBeam:
		applied := c.Dev.SetTXBeam(control.WireToAngle(m.Value))
		return control.Message{Type: control.MsgAck, Value: control.AngleToWire(applied)}
	case control.MsgSetBothBeams:
		applied := c.Dev.SetBothBeams(control.WireToAngle(m.Value))
		return control.Message{Type: control.MsgAck, Value: control.AngleToWire(applied)}
	case control.MsgSetGainWord:
		applied := c.Dev.Amp().SetGainWord(int(m.Value))
		return control.Message{Type: control.MsgAck, Value: int32(applied)}
	case control.MsgSetModulation:
		if m.Value > 0 {
			c.Dev.SetModulating(true, float64(m.Value))
		} else {
			c.Dev.SetModulating(false, 0)
		}
		return control.Message{Type: control.MsgAck, Value: m.Value}
	case control.MsgReadCurrent:
		amps := c.Dev.SupplyCurrentA(c.AmbientInputDBm)
		return control.Message{Type: control.MsgAck, Value: control.CurrentToWire(amps)}
	default:
		return control.Message{Type: control.MsgNack}
	}
}
