package gainctl

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
)

// sweepReference is the original minimum-to-maximum linear sweep, frozen
// here as the behavioral reference for the galloping search. Any change
// to Optimize must keep the final programmed word identical to this.
func sweepReference(dev *reflector.Reflector, extInDBm float64, cfg Config) Result {
	amp := dev.Amp()
	if cfg.BackoffSteps < 1 {
		cfg.BackoffSteps = 1
	}
	amp.SetGainWord(0)
	prev := dev.SupplyCurrentA(extInDBm)
	res := Result{}
	maxWord := amp.Words() - 1
	for w := 1; w <= maxWord; w++ {
		amp.SetGainWord(w)
		res.Steps++
		cur := dev.SupplyCurrentA(extInDBm)
		if cur-prev > cfg.JumpThresholdA {
			amp.SetGainWord(w - cfg.BackoffSteps)
			res.KneeDetected = true
			break
		}
		prev = cur
	}
	res.Word = amp.GainWord()
	res.GainDB = amp.GainDB()
	res.MarginDB = dev.LeakageDB() - res.GainDB
	return res
}

func mkDevice(seed int64, isoDB, minLeakDB float64) *reflector.Reflector {
	cfg := reflector.DefaultConfig(geom.V(2.5, 5), 270)
	cfg.BaseIsolationDB = isoDB
	cfg.MinLeakageDB = minLeakDB
	cfg.Seed = seed
	r, err := reflector.New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// TestGallopMatchesLinearSweep fuzzes the galloping knee search against
// the frozen linear sweep across device seeds, isolation bands, beam
// offsets, drive levels, and thresholds. The final word, gain, knee flag
// and margin must match exactly; probe count must never exceed the
// sweep's.
func TestGallopMatchesLinearSweep(t *testing.T) {
	var opt Optimizer
	f := func(seed int64, isoQ, beamQ, extQ, thrQ, backQ uint16) bool {
		iso := 25 + float64(isoQ%9)*5      // 25..65 dB
		minLeak := 15 + float64(isoQ%3)*10 // 15..35 dB
		beam := 240 + float64(beamQ%13)*5  // 240..300°
		ext := -80 + float64(extQ%12)*5    // -80..-25 dBm
		cfg := Config{
			JumpThresholdA: 0.005 * float64(1+thrQ%30), // 5 mA..150 mA
			BackoffSteps:   int(backQ % 9),             // 0 (clamps to 1)..8
		}
		devA := mkDevice(seed%64+1, iso, minLeak)
		devB := mkDevice(seed%64+1, iso, minLeak)
		devA.SetBothBeams(beam)
		devB.SetBothBeams(beam)

		want := sweepReference(devA, ext, cfg)
		got := opt.Optimize(devB, ext, cfg)
		if got.Word != want.Word || got.GainDB != want.GainDB ||
			got.KneeDetected != want.KneeDetected || got.MarginDB != want.MarginDB {
			t.Logf("seed=%d iso=%v leak=%v beam=%v ext=%v cfg=%+v:\n  sweep  %+v\n  gallop %+v",
				seed%64+1, iso, minLeak, beam, ext, cfg, want, got)
			return false
		}
		if want.KneeDetected && got.Steps > want.Steps {
			t.Logf("gallop probed %d words, sweep only %d", got.Steps, want.Steps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGallopProbeCount pins the headline saving: on a representative
// no-knee device the gallop probes O(log n) words instead of all of them.
func TestGallopProbeCount(t *testing.T) {
	dev := reflector.Default(geom.V(2.5, 5), 270)
	dev.SetBothBeams(270)
	res := Optimize(dev, -70, DefaultConfig())
	maxWord := dev.Amp().Words() - 1
	if res.Steps >= maxWord {
		t.Fatalf("gallop probed %d of %d words — no better than the linear sweep", res.Steps, maxWord)
	}
}

// TestSupplyCurrentMonotone checks the physical premise the gallop's
// bracket pruning rests on: supply current is monotone nondecreasing in
// the gain word.
func TestSupplyCurrentMonotone(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, ext := range []float64{-80, -60, -40, -28} {
			dev := mkDevice(seed, 40, 25)
			dev.SetBothBeams(270)
			amp := dev.Amp()
			prev := math.Inf(-1)
			for w := 0; w < amp.Words(); w++ {
				amp.SetGainWord(w)
				cur := dev.SupplyCurrentA(ext)
				if cur < prev {
					t.Fatalf("seed %d ext %v: I(%d)=%v < I(%d)=%v", seed, ext, w, cur, w-1, prev)
				}
				prev = cur
			}
		}
	}
}
