package gainctl

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
)

// lowIso builds a reflector whose leakage band overlaps the amplifier
// gain range, so the knee is reachable.
func lowIso(seed int64) *reflector.Reflector {
	cfg := reflector.DefaultConfig(geom.V(2.5, 5), 270)
	cfg.BaseIsolationDB = 40
	cfg.MinLeakageDB = 25
	cfg.Seed = seed
	r, err := reflector.New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func TestOptimizeStaysStable(t *testing.T) {
	dev := lowIso(1)
	dev.SetBothBeams(270)
	res := Optimize(dev, -60, DefaultConfig())
	if !res.KneeDetected {
		t.Fatalf("expected a knee within amp range (leakage %v)", dev.LeakageDB())
	}
	if !dev.Stable() {
		t.Errorf("final gain %v leaves loop unstable (leakage %v)", res.GainDB, dev.LeakageDB())
	}
	if dev.SaturatedAt(-60) {
		t.Error("final gain leaves amplifier saturated")
	}
	if res.MarginDB <= 0 {
		t.Errorf("margin = %v, want positive", res.MarginDB)
	}
	// "Just below": margin should be small, not tens of dB.
	if res.MarginDB > 8 {
		t.Errorf("margin = %v dB, algorithm is too conservative", res.MarginDB)
	}
}

func TestOptimizeHitsMaxWhenSafe(t *testing.T) {
	// Default (high-isolation) device: leakage ~60 dB, amp max 50:
	// no knee from feedback at weak input; algorithm should ride to max
	// gain.
	dev := reflector.Default(geom.V(2.5, 5), 270)
	dev.SetBothBeams(270)
	res := Optimize(dev, -70, DefaultConfig())
	if res.KneeDetected && res.GainDB < 45 {
		t.Errorf("unexpected early knee at %v dB (leakage %v)", res.GainDB, dev.LeakageDB())
	}
	if res.GainDB < 45 {
		t.Errorf("final gain = %v, want near max", res.GainDB)
	}
	if !dev.Stable() {
		t.Error("device should be stable at max gain with high isolation")
	}
}

func TestOptimizeAdaptsToBeamChange(t *testing.T) {
	// §4.2's point: when beams move, leakage moves, and the achievable
	// gain must follow. Find two beam settings with well-separated
	// leakage and check the algorithm lands accordingly.
	dev := lowIso(3)
	dev.SetRXBeam(270)
	loAng, hiAng := 0.0, 0.0
	lo, hi := math.Inf(1), math.Inf(-1)
	for rel := -50.0; rel <= 50; rel++ {
		dev.SetTXBeam(270 + rel)
		l := dev.LeakageDB()
		if l < lo {
			lo, loAng = l, 270+rel
		}
		if l > hi {
			hi, hiAng = l, 270+rel
		}
	}
	if hi-lo < 8 {
		t.Skipf("leakage swing only %v dB at this seed", hi-lo)
	}
	dev.SetTXBeam(loAng)
	resLo := Optimize(dev, -60, DefaultConfig())
	dev.SetTXBeam(hiAng)
	resHi := Optimize(dev, -60, DefaultConfig())
	if resHi.GainDB <= resLo.GainDB {
		t.Errorf("gain at high leakage (%v) should exceed gain at low leakage (%v)",
			resHi.GainDB, resLo.GainDB)
	}
}

func TestOptimizeWithStrongInput(t *testing.T) {
	// With a strong off-air input the amplifier overdrives before the
	// feedback loop does; the algorithm must still back off to an
	// unsaturated point.
	dev := reflector.Default(geom.V(2.5, 5), 270)
	dev.SetBothBeams(270)
	res := Optimize(dev, -28, DefaultConfig())
	if !res.KneeDetected {
		t.Fatal("expected overdrive knee")
	}
	if dev.SaturatedAt(-28) {
		t.Error("final point should be unsaturated")
	}
	// Knee from overdrive: gain ≈ Psat − input ≈ 48 minus backoff.
	if res.GainDB < 40 || res.GainDB > 48 {
		t.Errorf("gain = %v, want ~44-47", res.GainDB)
	}
}

func TestBackoffClamped(t *testing.T) {
	dev := lowIso(5)
	dev.SetBothBeams(270)
	cfg := DefaultConfig()
	cfg.BackoffSteps = 0 // invalid; clamps to 1
	res := Optimize(dev, -60, cfg)
	if res.Steps == 0 {
		t.Error("no steps taken")
	}
	if res.Word < 0 {
		t.Error("negative word")
	}
}

// Property: across seeds and beam angles, the algorithm never leaves the
// device unstable or saturated at the probe input.
func TestQuickNeverSaturated(t *testing.T) {
	f := func(seed int64, beamOff float64) bool {
		dev := lowIso(seed%100 + 1)
		dev.SetBothBeams(270 + math.Mod(beamOff, 50))
		res := Optimize(dev, -60, DefaultConfig())
		if res.KneeDetected && !dev.Stable() {
			// Knee detected must imply a stable final point.
			return false
		}
		return !dev.SaturatedAt(-60)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the achieved gain is monotone (within a step) in base
// isolation — more isolation, more gain.
func TestQuickGainTracksIsolation(t *testing.T) {
	mk := func(iso float64) *reflector.Reflector {
		cfg := reflector.DefaultConfig(geom.V(2.5, 5), 270)
		cfg.BaseIsolationDB = iso
		cfg.MinLeakageDB = 20
		r, err := reflector.New(cfg)
		if err != nil {
			panic(err)
		}
		r.SetBothBeams(270)
		return r
	}
	prev := -1.0
	for iso := 30.0; iso <= 55; iso += 5 {
		res := Optimize(mk(iso), -60, DefaultConfig())
		if res.GainDB < prev-0.5 {
			t.Fatalf("gain %v at isolation %v below previous %v", res.GainDB, iso, prev)
		}
		prev = res.GainDB
	}
}
