// Package gainctl implements MoVR's adaptive amplifier gain control
// (paper §4.2): choose the largest amplifier gain that keeps the
// TX→RX-leakage feedback loop out of saturation, using only the
// amplifier's DC supply current as the observable.
//
// "Our gain control algorithm works as follows. It sets the amplifier
// gain to the minimum, then increases the gain, step by step, while
// monitoring the amplifier's current consumption. The algorithm continues
// increasing the gain until the current consumption suddenly goes high.
// This indicates that the amplifier is entering saturation mode. The
// algorithm keeps the amplification gain just below this point."
//
// The algorithm runs on the reflector's own microcontroller (it has
// direct access to the current sensor); the AP merely triggers it over
// the control link.
package gainctl

import (
	"github.com/movr-sim/movr/internal/amplifier"
	"github.com/movr-sim/movr/internal/reflector"
)

// Config tunes the gain-control loop.
type Config struct {
	// JumpThresholdA is the per-step current increase that signals the
	// onset of saturation.
	JumpThresholdA float64

	// BackoffSteps is how many DAC steps to retreat below the detected
	// knee — the "just below this point" safety margin.
	BackoffSteps int
}

// DefaultConfig returns thresholds matched to the amplifier model: the
// compression spike is ~0.6 A over a few tenths of a dB, while normal
// per-step (0.5 dB) growth stays under ~20 mA.
func DefaultConfig() Config {
	return Config{
		JumpThresholdA: 0.05,
		BackoffSteps:   4,
	}
}

// Result reports the outcome of a gain-control run.
type Result struct {
	// GainDB is the final programmed gain.
	GainDB float64

	// Word is the final DAC word.
	Word int

	// Steps is the number of gain words whose supply current was probed
	// (excluding the word-0 reference measurement).
	Steps int

	// KneeDetected reports whether a saturation knee was found; false
	// means the sweep reached maximum gain without saturating.
	KneeDetected bool

	// MarginDB is the final stability margin LeakageDB − GainDB
	// (positive = stable).
	MarginDB float64
}

// Optimize runs the §4.2 algorithm on the device: find the lowest gain
// word whose one-step supply-current increase exceeds the jump threshold
// (the saturation knee), then back off just below it. extInDBm is the
// off-air power at the amplifier input during the run (the AP keeps
// transmitting so the loop sees realistic drive).
//
// This convenience wrapper allocates fresh probe scratch on every call;
// hot paths should hold an Optimizer and reuse it.
func Optimize(dev *reflector.Reflector, extInDBm float64, cfg Config) Result {
	var o Optimizer
	return o.Optimize(dev, extInDBm, cfg)
}

// Optimizer runs gain-control sweeps, reusing per-word probe scratch
// across calls so steady-state runs allocate nothing. The zero value is
// ready to use. Not safe for concurrent use.
type Optimizer struct {
	cur   []float64 // supply current per gain word, this run
	seen  []uint64  // epoch stamp marking cur[w] valid
	epoch uint64

	// Per-run probe state (reset on every Optimize call).
	dev   *reflector.Reflector
	amp   *amplifier.VGA
	ext   float64
	thr   float64
	steps int
}

// Optimize finds the same knee word as the naive minimum-to-maximum
// sweep, but with far fewer supply-current probes. The supply current is
// monotone nondecreasing in the gain word (more gain raises the feedback
// fixed point, which only pushes the amplifier deeper into compression),
// so consecutive-step increases are nonnegative and telescope: a bracket
// [lo, hi] whose total rise is at most the jump threshold cannot contain
// a single step above it and is skipped wholesale. The search gallops
// with doubling strides and bisects the first bracket whose total rise
// exceeds the threshold down to the first offending step. Leaf
// comparisons use exactly the sweep's I(w) − I(w−1) > threshold test on
// identical probe values (the current at a word does not depend on probe
// order), so the detected knee — and the final programmed word — match
// the naive sweep bit for bit.
func (o *Optimizer) Optimize(dev *reflector.Reflector, extInDBm float64, cfg Config) Result {
	amp := dev.Amp()
	if cfg.BackoffSteps < 1 {
		cfg.BackoffSteps = 1
	}
	maxWord := amp.Words() - 1
	if n := maxWord + 1; cap(o.cur) < n {
		o.cur = make([]float64, n)
		o.seen = make([]uint64, n)
	} else {
		o.cur = o.cur[:n]
		o.seen = o.seen[:n]
	}
	o.epoch++
	o.dev, o.amp, o.ext, o.thr = dev, amp, extInDBm, cfg.JumpThresholdA
	o.steps = 0

	o.current(0)
	knee := 0
	lo, stride := 0, 1
	for lo < maxWord {
		hi := lo + stride
		if hi > maxWord {
			hi = maxWord
		}
		if o.current(hi)-o.current(lo) > o.thr {
			knee = o.firstJump(lo, hi)
			if knee != 0 {
				break
			}
			// The bracket rises more than the threshold in total but no
			// single step exceeds it; restart the gallop past it.
			lo, stride = hi, 1
			continue
		}
		lo, stride = hi, stride*2
	}

	res := Result{Steps: o.steps}
	if knee != 0 {
		// Saturation onset: retreat below the knee.
		amp.SetGainWord(knee - cfg.BackoffSteps)
		res.KneeDetected = true
	} else {
		amp.SetGainWord(maxWord)
	}
	res.Word = amp.GainWord()
	res.GainDB = amp.GainDB()
	res.MarginDB = dev.LeakageDB() - res.GainDB
	o.dev, o.amp = nil, nil
	return res
}

// current probes (or recalls) the supply current at gain word w.
func (o *Optimizer) current(w int) float64 {
	if o.seen[w] == o.epoch {
		return o.cur[w]
	}
	o.amp.SetGainWord(w)
	if w > 0 {
		o.steps++
	}
	v := o.dev.SupplyCurrentA(o.ext)
	o.cur[w] = v
	o.seen[w] = o.epoch
	return v
}

// firstJump returns the first word w in (lo, hi] whose one-step rise
// I(w) − I(w−1) exceeds the threshold, or 0 if none does.
func (o *Optimizer) firstJump(lo, hi int) int {
	if hi-lo == 1 {
		if o.current(hi)-o.current(lo) > o.thr {
			return hi
		}
		return 0
	}
	mid := lo + (hi-lo)/2
	if o.current(mid)-o.current(lo) > o.thr {
		if w := o.firstJump(lo, mid); w != 0 {
			return w
		}
	}
	if o.current(hi)-o.current(mid) > o.thr {
		return o.firstJump(mid, hi)
	}
	return 0
}
