// Package gainctl implements MoVR's adaptive amplifier gain control
// (paper §4.2): choose the largest amplifier gain that keeps the
// TX→RX-leakage feedback loop out of saturation, using only the
// amplifier's DC supply current as the observable.
//
// "Our gain control algorithm works as follows. It sets the amplifier
// gain to the minimum, then increases the gain, step by step, while
// monitoring the amplifier's current consumption. The algorithm continues
// increasing the gain until the current consumption suddenly goes high.
// This indicates that the amplifier is entering saturation mode. The
// algorithm keeps the amplification gain just below this point."
//
// The algorithm runs on the reflector's own microcontroller (it has
// direct access to the current sensor); the AP merely triggers it over
// the control link.
package gainctl

import (
	"github.com/movr-sim/movr/internal/reflector"
)

// Config tunes the gain-control loop.
type Config struct {
	// JumpThresholdA is the per-step current increase that signals the
	// onset of saturation.
	JumpThresholdA float64

	// BackoffSteps is how many DAC steps to retreat below the detected
	// knee — the "just below this point" safety margin.
	BackoffSteps int
}

// DefaultConfig returns thresholds matched to the amplifier model: the
// compression spike is ~0.6 A over a few tenths of a dB, while normal
// per-step (0.5 dB) growth stays under ~20 mA.
func DefaultConfig() Config {
	return Config{
		JumpThresholdA: 0.05,
		BackoffSteps:   4,
	}
}

// Result reports the outcome of a gain-control run.
type Result struct {
	// GainDB is the final programmed gain.
	GainDB float64

	// Word is the final DAC word.
	Word int

	// Steps is the number of gain increments probed.
	Steps int

	// KneeDetected reports whether a saturation knee was found; false
	// means the sweep reached maximum gain without saturating.
	KneeDetected bool

	// MarginDB is the final stability margin LeakageDB − GainDB
	// (positive = stable).
	MarginDB float64
}

// Optimize runs the §4.2 algorithm on the device: start at minimum gain,
// step upward watching the supply current, stop on the first sudden jump,
// then back off. extInDBm is the off-air power at the amplifier input
// during the run (the AP keeps transmitting so the loop sees realistic
// drive).
func Optimize(dev *reflector.Reflector, extInDBm float64, cfg Config) Result {
	amp := dev.Amp()
	if cfg.BackoffSteps < 1 {
		cfg.BackoffSteps = 1
	}
	amp.SetGainWord(0)
	prev := dev.SupplyCurrentA(extInDBm)
	res := Result{}
	maxWord := amp.Words() - 1
	for w := 1; w <= maxWord; w++ {
		amp.SetGainWord(w)
		res.Steps++
		cur := dev.SupplyCurrentA(extInDBm)
		if cur-prev > cfg.JumpThresholdA {
			// Saturation onset: retreat below the knee.
			amp.SetGainWord(w - cfg.BackoffSteps)
			res.KneeDetected = true
			break
		}
		prev = cur
	}
	res.Word = amp.GainWord()
	res.GainDB = amp.GainDB()
	res.MarginDB = dev.LeakageDB() - res.GainDB
	return res
}
