package phy

import "github.com/movr-sim/movr/internal/units"

// VRRequirement captures what the headset demands of the wireless link:
// the paper's premise is that "High-quality VR systems need to stream
// multiple Gbps of data" with "strict latency constraints... (about
// 10ms)" that preclude compression (§1).
type VRRequirement struct {
	// RateBps is the sustained data rate the link must deliver.
	RateBps float64

	// LatencyBudget is the motion-to-photon deadline in seconds; the
	// headset "updates the display every 10ms" (§6).
	LatencyBudgetS float64
}

// HTCViveRequirement returns the requirement of the paper's HTC Vive
// testbed: a 2160×1200 dual display at 90 Hz. The required link rate is
// the rate at which the paper's Fig 3 dashed line sits (≈4 Gb/s after
// display-stream framing efficiency), with the 10 ms update deadline.
func HTCViveRequirement() VRRequirement {
	return VRRequirement{
		RateBps:        4.2 * units.Gbps,
		LatencyBudgetS: 0.010,
	}
}

// RequiredSNRdB returns the minimum SNR at which some 802.11ad MCS meets
// the requirement — the paper's "Required SNR by VR headset" line in
// Fig 3.
func (r VRRequirement) RequiredSNRdB() float64 { return MinSNRForRate(r.RateBps) }

// MetBySNR reports whether a link at snrDB satisfies the rate
// requirement.
func (r VRRequirement) MetBySNR(snrDB float64) bool {
	return RateBps(snrDB) >= r.RateBps
}

// MetByRate reports whether a link at rateBps satisfies the rate
// requirement.
func (r VRRequirement) MetByRate(rateBps float64) bool { return rateBps >= r.RateBps }
