package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoodput(t *testing.T) {
	// Far above every threshold: goodput equals the max PHY rate.
	if g := GoodputBps(30); math.Abs(g-MaxRateBps) > 1e3 {
		t.Errorf("goodput at 30 dB = %v", g)
	}
	// Dead link: zero.
	if g := GoodputBps(-20); g != 0 {
		t.Errorf("goodput at -20 dB = %v", g)
	}
	// Exactly at the top MCS's threshold (20 dB, where no faster MCS
	// can shadow it) the ~1% PER shaves the rate.
	m, ok := Best(20)
	if !ok || m.Index != 24 {
		t.Fatalf("Best(20) = %+v", m)
	}
	g := GoodputBps(m.MinSNRdB)
	if g >= m.RateBps {
		t.Error("goodput at threshold should be below nominal rate")
	}
	if g < 0.95*m.RateBps {
		t.Errorf("goodput at threshold = %v, too pessimistic", g)
	}
}

// Property: goodput never exceeds the nominal rate at the same SNR.
func TestQuickGoodputBounded(t *testing.T) {
	f := func(a float64) bool {
		snr := math.Mod(a, 40)
		if math.IsNaN(snr) {
			return true
		}
		return GoodputBps(snr) <= RateBps(snr)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
