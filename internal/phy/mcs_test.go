package phy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/units"
)

func TestTableShape(t *testing.T) {
	if len(Table) != 25 {
		t.Fatalf("table size = %d, want 25 (MCS 0-24)", len(Table))
	}
	for i, m := range Table {
		if m.Index != i {
			t.Errorf("Table[%d].Index = %d", i, m.Index)
		}
		if m.RateBps <= 0 || m.CodeRate <= 0 || m.CodeRate > 1 {
			t.Errorf("MCS %d has bad rate/code: %+v", i, m)
		}
	}
}

func TestRateMonotoneInIndexWithinPHY(t *testing.T) {
	for i := 1; i < len(Table); i++ {
		if Table[i].PHY != Table[i-1].PHY {
			continue
		}
		if Table[i].RateBps <= Table[i-1].RateBps {
			t.Errorf("rate not increasing at MCS %d", i)
		}
		if Table[i].MinSNRdB <= Table[i-1].MinSNRdB {
			t.Errorf("SNR threshold not increasing at MCS %d", i)
		}
	}
}

func TestMaxRateMatchesPaper(t *testing.T) {
	// Paper §1: 802.11ad "can deliver up to 6.8 Gbps".
	if math.Abs(MaxRateBps-6.75675e9) > 1e6 {
		t.Errorf("max rate = %v", MaxRateBps)
	}
	// Paper §5.2: "the 20dB needed for the maximum data rate".
	m, ok := Best(20)
	if !ok || m.Index != 24 {
		t.Errorf("Best(20 dB) = %+v, want MCS 24", m)
	}
	if m2, _ := Best(19.9); m2.Index == 24 {
		t.Error("MCS 24 should need 20 dB")
	}
}

func TestBestAtPaperSNRs(t *testing.T) {
	// Fig 3: LOS mean SNR 25 dB -> "almost 7 Gb/s".
	if got := RateBps(25); got != MaxRateBps {
		t.Errorf("rate at 25 dB = %v", got)
	}
	// Hand blockage: 25-16 = 9 dB -> must fall below the VR requirement.
	req := HTCViveRequirement()
	if req.MetBySNR(9) {
		t.Error("9 dB should not meet the VR requirement")
	}
	// Dead link below control threshold.
	if _, ok := Best(-20); ok {
		t.Error("Best(-20 dB) should fail")
	}
	if RateBps(-20) != 0 {
		t.Error("rate at -20 dB should be 0")
	}
}

func TestMinSNRForRate(t *testing.T) {
	// 4.2 Gbps needs MCS 21 (4.5045 Gb/s @ 13 dB) or SC MCS 12 @ 15;
	// minimum is 13.
	if got := MinSNRForRate(4.2 * units.Gbps); got != 13 {
		t.Errorf("MinSNRForRate(4.2G) = %v, want 13", got)
	}
	if got := MinSNRForRate(100 * units.Gbps); !math.IsInf(got, 1) {
		t.Errorf("impossible rate should be +Inf, got %v", got)
	}
	if got := MinSNRForRate(0); got != Table[0].MinSNRdB {
		t.Errorf("MinSNRForRate(0) = %v", got)
	}
}

func TestByIndex(t *testing.T) {
	m, ok := ByIndex(12)
	if !ok || m.PHY != SingleCarrier || m.Modulation != "pi/2-16QAM" {
		t.Errorf("ByIndex(12) = %+v", m)
	}
	if _, ok := ByIndex(99); ok {
		t.Error("ByIndex(99) should fail")
	}
}

func TestPHYTypeString(t *testing.T) {
	if Control.String() != "control" || SingleCarrier.String() != "SC" || OFDM.String() != "OFDM" {
		t.Error("PHYType strings wrong")
	}
	if PHYType(9).String() != "unknown" {
		t.Error("unknown PHYType string")
	}
}

func TestPER(t *testing.T) {
	m, _ := ByIndex(12)
	// At the operating point, PER ≈ 1%.
	if per := m.PERAt(m.MinSNRdB); per > 0.03 || per < 0.001 {
		t.Errorf("PER at MinSNR = %v, want ~0.01", per)
	}
	// Well above: essentially zero. Well below: essentially one.
	if per := m.PERAt(m.MinSNRdB + 5); per > 1e-6 {
		t.Errorf("PER at +5 dB = %v", per)
	}
	if per := m.PERAt(m.MinSNRdB - 5); per < 0.999 {
		t.Errorf("PER at -5 dB = %v", per)
	}
}

func TestVRRequirement(t *testing.T) {
	req := HTCViveRequirement()
	if req.RateBps < 2*units.Gbps {
		t.Error("VR must require multiple Gbps (paper §1)")
	}
	if req.LatencyBudgetS != 0.010 {
		t.Errorf("latency budget = %v, want 10 ms", req.LatencyBudgetS)
	}
	// Required SNR line sits in the low-to-mid teens (Fig 3 top).
	snr := req.RequiredSNRdB()
	if snr < 11 || snr > 16 {
		t.Errorf("required SNR = %v dB, want low teens", snr)
	}
	if !req.MetBySNR(25) {
		t.Error("25 dB should meet the requirement")
	}
	if !req.MetByRate(5 * units.Gbps) {
		t.Error("5 Gb/s should meet the requirement")
	}
	if req.MetByRate(1 * units.Gbps) {
		t.Error("1 Gb/s should fail the requirement")
	}
}

// Property: RateBps is monotone nondecreasing in SNR.
func TestQuickRateMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		s1, s2 := math.Mod(a, 60), math.Mod(b, 60)
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return RateBps(s1) <= RateBps(s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Best returns an MCS whose threshold is satisfied, and
// MinSNRForRate inverts RateBps.
func TestQuickBestConsistent(t *testing.T) {
	f := func(a float64) bool {
		snr := math.Mod(a, 40)
		if math.IsNaN(snr) {
			return true
		}
		m, ok := Best(snr)
		if !ok {
			return snr < Table[0].MinSNRdB
		}
		if m.MinSNRdB > snr {
			return false
		}
		// No other MCS with satisfied threshold has a higher rate.
		for _, o := range Table {
			if o.MinSNRdB <= snr && o.RateBps > m.RateBps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PER is monotone nonincreasing in SNR for every MCS.
func TestQuickPERMonotone(t *testing.T) {
	f := func(a, b float64, idx uint8) bool {
		m := Table[int(idx)%len(Table)]
		s1, s2 := math.Mod(a, 60), math.Mod(b, 60)
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return m.PERAt(s1) >= m.PERAt(s2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
