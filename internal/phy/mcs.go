// Package phy models the IEEE 802.11ad physical layer the paper uses to
// convert measured SNR into achievable data rate: "the corresponding data
// rates are computed by substituting the SNRs measurements into standard
// rate tables based on the 802.11ad modulation and code rates" (§3).
//
// The package provides the control, single-carrier (SC), and OFDM MCS
// tables with their minimum-SNR operating points, plus helpers to pick the
// best MCS for an SNR and to express the VR headset's requirements.
package phy

import (
	"math"

	"github.com/movr-sim/movr/internal/units"
)

// PHYType identifies which 802.11ad PHY an MCS belongs to.
type PHYType int

const (
	// Control is the low-rate control PHY (MCS 0).
	Control PHYType = iota
	// SingleCarrier is the SC PHY (MCS 1-12).
	SingleCarrier
	// OFDM is the OFDM PHY (MCS 13-24).
	OFDM
)

// String returns the PHY name.
func (t PHYType) String() string {
	switch t {
	case Control:
		return "control"
	case SingleCarrier:
		return "SC"
	case OFDM:
		return "OFDM"
	default:
		return "unknown"
	}
}

// MCS is one modulation-and-coding scheme of 802.11ad.
type MCS struct {
	// Index is the standard MCS index (0-24).
	Index int

	// PHY is the PHY type this MCS belongs to.
	PHY PHYType

	// Modulation names the constellation.
	Modulation string

	// CodeRate is the LDPC code rate.
	CodeRate float64

	// RateBps is the PHY data rate in bits per second.
	RateBps float64

	// MinSNRdB is the minimum SNR at which the MCS operates at ~1% PER,
	// drawn from 802.11ad link-level evaluations.
	MinSNRdB float64
}

// Table is the full 802.11ad MCS set in increasing-index order. MCS 25-31
// (OFDM high orders beyond MCS 24) are not part of the mandatory set and
// are omitted, matching the rate tables the paper cites (max 6.76 Gb/s).
var Table = []MCS{
	{0, Control, "DBPSK", 0.5, 27.5 * units.Mbps, -6},

	{1, SingleCarrier, "pi/2-BPSK", 0.5, 385 * units.Mbps, 1},
	{2, SingleCarrier, "pi/2-BPSK", 0.5, 770 * units.Mbps, 2.5},
	{3, SingleCarrier, "pi/2-BPSK", 0.625, 962.5 * units.Mbps, 3.5},
	{4, SingleCarrier, "pi/2-BPSK", 0.75, 1155 * units.Mbps, 4.5},
	{5, SingleCarrier, "pi/2-BPSK", 0.8125, 1251.25 * units.Mbps, 5.5},
	{6, SingleCarrier, "pi/2-QPSK", 0.5, 1540 * units.Mbps, 6.5},
	{7, SingleCarrier, "pi/2-QPSK", 0.625, 1925 * units.Mbps, 7.5},
	{8, SingleCarrier, "pi/2-QPSK", 0.75, 2310 * units.Mbps, 9},
	{9, SingleCarrier, "pi/2-QPSK", 0.8125, 2502.5 * units.Mbps, 10},
	{10, SingleCarrier, "pi/2-16QAM", 0.5, 3080 * units.Mbps, 12},
	{11, SingleCarrier, "pi/2-16QAM", 0.625, 3850 * units.Mbps, 13.5},
	{12, SingleCarrier, "pi/2-16QAM", 0.75, 4620 * units.Mbps, 15},

	{13, OFDM, "SQPSK", 0.5, 693 * units.Mbps, 1.5},
	{14, OFDM, "SQPSK", 0.625, 866.25 * units.Mbps, 2.5},
	{15, OFDM, "QPSK", 0.5, 1386 * units.Mbps, 4},
	{16, OFDM, "QPSK", 0.625, 1732.5 * units.Mbps, 5},
	{17, OFDM, "QPSK", 0.75, 2079 * units.Mbps, 6.5},
	{18, OFDM, "16QAM", 0.5, 2772 * units.Mbps, 8},
	{19, OFDM, "16QAM", 0.625, 3465 * units.Mbps, 10},
	{20, OFDM, "16QAM", 0.75, 4158 * units.Mbps, 11.5},
	{21, OFDM, "16QAM", 0.8125, 4504.5 * units.Mbps, 13},
	{22, OFDM, "64QAM", 0.625, 5197.5 * units.Mbps, 14.5},
	{23, OFDM, "64QAM", 0.75, 6237 * units.Mbps, 17},
	{24, OFDM, "64QAM", 0.8125, 6756.75 * units.Mbps, 20},
}

// MaxRateBps is the highest 802.11ad rate (MCS 24), ≈6.76 Gb/s — the
// paper's "up to 6.8 Gbps".
var MaxRateBps = Table[len(Table)-1].RateBps

// Best returns the highest-rate MCS whose minimum SNR is at or below
// snrDB, and true when one exists. Below the control PHY threshold the
// link is down and Best returns false.
func Best(snrDB float64) (MCS, bool) {
	best := -1
	for i, m := range Table {
		if snrDB >= m.MinSNRdB {
			if best < 0 || m.RateBps > Table[best].RateBps {
				best = i
			}
		}
	}
	if best < 0 {
		return MCS{}, false
	}
	return Table[best], true
}

// RateBps returns the achievable data rate at snrDB, or 0 when the link
// cannot sustain even the control PHY.
func RateBps(snrDB float64) float64 {
	m, ok := Best(snrDB)
	if !ok {
		return 0
	}
	return m.RateBps
}

// GoodputBps returns the expected useful throughput at snrDB: the best
// MCS's PHY rate discounted by its packet error rate at that SNR. Near
// an MCS threshold the goodput dips below the nominal rate — the reason
// rate adaptation keeps a margin.
func GoodputBps(snrDB float64) float64 {
	m, ok := Best(snrDB)
	if !ok {
		return 0
	}
	return m.RateBps * (1 - m.PERAt(snrDB))
}

// MinSNRForRate returns the lowest SNR at which some MCS achieves at
// least rateBps, or +Inf when no MCS is fast enough.
func MinSNRForRate(rateBps float64) float64 {
	best := math.Inf(1)
	for _, m := range Table {
		if m.RateBps >= rateBps && m.MinSNRdB < best {
			best = m.MinSNRdB
		}
	}
	return best
}

// ByIndex returns the MCS with the given index and true when it exists.
func ByIndex(idx int) (MCS, bool) {
	for _, m := range Table {
		if m.Index == idx {
			return m, true
		}
	}
	return MCS{}, false
}

// PERAt approximates the packet error rate of this MCS at the given SNR
// with a logistic waterfall centred slightly below the MCS operating
// point: ~1% PER at MinSNRdB, falling fast above it. It is used by the
// streaming simulator to inject residual loss.
func (m MCS) PERAt(snrDB float64) float64 {
	// Logistic centred at MinSNR - 1.15 with slope chosen so that
	// PER(MinSNR) ≈ 1e-2 and PER(MinSNR-3) ≈ 1.
	const width = 0.25 // dB per logistic unit
	x := (snrDB - (m.MinSNRdB - 1.15)) / width
	if x > 500 {
		return 0
	}
	if x < -500 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}
