package baseline

import (
	"math"
	"testing"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

func testbed() (*room.Room, *channel.Tracer, *radio.Radio, *radio.Radio) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	tx := radio.New("tx", geom.V(0.6, 0.6), antenna.Default(45), b)
	rx := radio.New("rx", geom.V(3.8, 2.6), antenna.Default(215), b)
	return rm, tr, tx, rx
}

func TestOptNLOSBelowLOS(t *testing.T) {
	// The paper's core §3 finding: the best wall reflection sits far
	// below the line of sight — mean 16-17 dB down.
	_, tr, tx, rx := testbed()
	los := radio.LinkSNRAligned(tr, tx, rx)
	res := OptNLOS(tr, tx, rx, 3)
	if math.IsInf(res.SNRdB, -1) {
		t.Fatal("no NLOS path found")
	}
	gap := los - res.SNRdB
	if gap < 8 || gap > 30 {
		t.Errorf("NLOS gap = %v dB, want paper-like 10-25", gap)
	}
	// Opt-NLOS must fail the VR requirement (Fig 3 last bar).
	if phy.HTCViveRequirement().MetBySNR(res.SNRdB) {
		t.Errorf("Opt-NLOS at %v dB should fail VR", res.SNRdB)
	}
	if res.Combos == 0 {
		t.Error("no combos counted")
	}
}

func TestOptNLOSFindsAWall(t *testing.T) {
	// The winning beams should NOT point at each other (that is the
	// excluded LOS direction) — they point at a wall.
	_, tr, tx, rx := testbed()
	preOrient := tx.Array.OrientationDeg()
	preSteer := tx.Array.SteeringDeg()
	res := OptNLOS(tr, tx, rx, 3)
	losTX := geom.DirectionDeg(tx.Pos, rx.Pos)
	if math.Abs(units.AngleDiffDeg(res.TXBeamDeg, losTX)) < 5 {
		t.Errorf("Opt-NLOS TX beam %v suspiciously at LOS %v", res.TXBeamDeg, losTX)
	}
	// The sweep must not leave the radios rotated: state is restored.
	if tx.Array.OrientationDeg() != preOrient {
		t.Error("tx orientation not restored")
	}
	if math.Abs(units.AngleDiffDeg(tx.Array.SteeringDeg(), preSteer)) > 1e-9 {
		t.Error("tx steering not restored")
	}
}

func TestOptNLOSNoReflections(t *testing.T) {
	// Direct-only tracer: no NLOS paths exist.
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 0)
	tx := radio.New("tx", geom.V(1, 1), antenna.Default(45), b)
	rx := radio.New("rx", geom.V(4, 4), antenna.Default(225), b)
	res := OptNLOS(tr, tx, rx, 5)
	if !math.IsInf(res.SNRdB, -1) {
		t.Errorf("expected -Inf with no reflections, got %v", res.SNRdB)
	}
}

func TestStaticWHDIBreaksOnMotion(t *testing.T) {
	_, tr, tx, rx := testbed()
	var w StaticWHDI
	// Unconfigured: dead.
	if !math.IsInf(w.Evaluate(tr, tx, rx), -1) {
		t.Error("unconfigured WHDI should be -Inf")
	}
	w.Setup(tx, rx)
	before := w.Evaluate(tr, tx, rx)
	if before < 15 {
		t.Errorf("aligned WHDI SNR = %v", before)
	}
	// Player walks two metres: the frozen beams now miss.
	rx.Pos = geom.V(1.8, 4.2)
	after := w.Evaluate(tr, tx, rx)
	if after > before-10 {
		t.Errorf("WHDI after motion = %v, before = %v: should collapse", after, before)
	}
}

func TestWiFiNeverMeetsVR(t *testing.T) {
	req := phy.HTCViveRequirement()
	for _, d := range []float64{1, 5, 10, 20} {
		if rate := WiFiRateBps(d); req.MetByRate(rate) {
			t.Errorf("WiFi at %v m (%v bps) should not meet VR", d, rate)
		}
	}
	// Monotone nonincreasing with distance.
	prev := math.Inf(1)
	for d := 1.0; d < 25; d += 0.5 {
		r := WiFiRateBps(d)
		if r > prev+1e-9 {
			t.Fatalf("WiFi rate increased at %v m", d)
		}
		prev = r
	}
}

func TestMultiAP(t *testing.T) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	hs := radio.NewHeadset(geom.V(2.5, 2.5), antenna.Default(0), b)
	deploy := MultiAP{APs: []*radio.AP{
		radio.NewAP(geom.V(0.3, 0.3), antenna.Default(45), b),
		radio.NewAP(geom.V(4.7, 4.7), antenna.Default(225), b),
	}}
	// Block the path to AP 0 only.
	rm.AddObstacle(room.Body(geom.V(1.4, 1.4)))
	hs.SetYaw(45) // facing AP 1
	snr, idx := deploy.Best(tr, hs)
	if idx != 1 {
		t.Errorf("picked AP %d, want 1", idx)
	}
	if snr < 15 {
		t.Errorf("multi-AP SNR = %v", snr)
	}
	// Cabling cost grows with deployment size.
	pc := geom.V(0.3, 0.3)
	if deploy.CablingM(pc) <= 8 {
		t.Errorf("cabling = %v m, want substantial", deploy.CablingM(pc))
	}
}

func TestHelpers(t *testing.T) {
	if RequiredSNRGap(20, 13) != 7 {
		t.Error("gap wrong")
	}
	if GbpsOrZero(5e9) != 5 {
		t.Error("GbpsOrZero wrong")
	}
}
