// Package baseline implements the alternatives MoVR is compared against:
//
//   - Opt-NLOS: the paper's §3/§5.2 baseline — ignore the (blocked)
//     line-of-sight and exhaustively sweep both beams over every
//     combination, keeping the best wall-reflection SNR.
//   - Static WHDI: wireless-HDMI products "assume static links and
//     require line-of-sight... they cannot adapt their direction and will
//     be disconnected if the player moves" (§2).
//   - WiFi: conventional bands "cannot support the required data rates"
//     (§1).
//   - Multi-AP: several full mmWave APs for LOS diversity, "defeats the
//     purpose... requires enormous cabling complexity" (§1).
package baseline

import (
	"math"

	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/units"
)

// OptNLOSResult is the outcome of the exhaustive two-sided beam sweep.
type OptNLOSResult struct {
	// SNRdB is the best non-line-of-sight SNR found.
	SNRdB float64

	// TXBeamDeg and RXBeamDeg are the winning beam directions.
	TXBeamDeg, RXBeamDeg float64

	// Combos is the number of beam combinations evaluated.
	Combos int
}

// OptNLOS sweeps both beams over the full circle at stepDeg and returns
// the best SNR obtainable from wall reflections alone, excluding the
// direct path entirely ("We try every combination of beam angle for both
// transmitter and receiver antennas... We ignore the direction of the
// line-of-sight and note maximum SNR across all non-line-of-sight
// paths", §3). Like the paper's measurement rig, the sweep physically
// rotates the radios, so every direction is reachable at full array
// gain. Both radios are restored to their pre-sweep orientation and
// steering before returning; apply the winning beams from the result if
// you want to operate there.
func OptNLOS(tr *channel.Tracer, tx, rx *radio.Radio, stepDeg float64) OptNLOSResult {
	res, _ := OptNLOSBuf(tr, tx, rx, stepDeg, nil)
	return res
}

// OptNLOSBuf is OptNLOS with a caller-retained tracer scratch buffer
// (channel.Tracer.TraceHInto semantics): the trace writes into scratch's
// storage and the possibly-grown buffer is returned for reuse, so a
// caller sweeping many placements allocates nothing per call. The sweep
// itself evaluates the traced paths in place — reflected paths are
// skipped by kind rather than copied into a filtered slice — which is
// both the allocation saving and bit-identical to the historical
// filter-then-combine arithmetic.
func OptNLOSBuf(tr *channel.Tracer, tx, rx *radio.Radio, stepDeg float64, scratch []channel.Path) (OptNLOSResult, []channel.Path) {
	txOrient, txSteer := tx.Array.OrientationDeg(), tx.Array.SteeringDeg()
	rxOrient, rxSteer := rx.Array.OrientationDeg(), rx.Array.SteeringDeg()
	defer func() {
		tx.Array.SetOrientation(txOrient)
		tx.SteerTo(txSteer)
		rx.Array.SetOrientation(rxOrient)
		rx.SteerTo(rxSteer)
	}()
	scratch = tr.TraceHInto(scratch[:0], tx.Pos, rx.Pos, tx.HeightM, rx.HeightM)
	reflected := 0
	for _, p := range scratch {
		if p.Kind == channel.Reflected {
			reflected++
		}
	}
	res := OptNLOSResult{SNRdB: math.Inf(-1)}
	if reflected == 0 {
		return res, scratch
	}
	if stepDeg <= 0 {
		stepDeg = 1
	}
	for txBeam := 0.0; txBeam < 360; txBeam += stepDeg {
		tx.Array.SetOrientation(txBeam)
		tx.SteerTo(txBeam)
		for rxBeam := 0.0; rxBeam < 360; rxBeam += stepDeg {
			rx.Array.SetOrientation(rxBeam)
			rx.SteerTo(rxBeam)
			res.Combos++
			snr := tx.Budget.CombinedSNRdBOfKind(scratch, channel.Reflected, tx.Array, rx.Array)
			if snr > res.SNRdB {
				res.SNRdB = snr
				res.TXBeamDeg = txBeam
				res.RXBeamDeg = rxBeam
			}
		}
	}
	return res, scratch
}

// StaticWHDI models a wireless-HDMI link: beams are aligned once, at
// setup, toward the initial positions, and never move again.
type StaticWHDI struct {
	txBeamDeg, rxBeamDeg float64
	configured           bool
}

// Setup aligns the link for the current geometry and freezes it.
func (s *StaticWHDI) Setup(tx, rx *radio.Radio) {
	s.txBeamDeg = tx.SteerToward(rx.Pos)
	s.rxBeamDeg = rx.SteerToward(tx.Pos)
	s.configured = true
}

// Evaluate returns the link SNR with the frozen beams applied, for
// whatever the geometry is now. It returns −Inf before Setup.
func (s *StaticWHDI) Evaluate(tr *channel.Tracer, tx, rx *radio.Radio) float64 {
	if !s.configured {
		return math.Inf(-1)
	}
	tx.SteerTo(s.txBeamDeg)
	rx.SteerTo(s.rxBeamDeg)
	return radio.LinkSNRdB(tr, tx, rx)
}

// WiFiBestRateBps is the best-case throughput of the 802.11ac-class link
// the paper dismisses (3×3 MIMO, 80 MHz): ~1.3 Gb/s.
const WiFiBestRateBps = 1.3e9

// WiFiRateBps models the conventional-band fallback: full rate up to a
// comfortable indoor range, degrading gently with distance, and immune
// to mmWave-style hand blockage (lower bands diffract around small
// obstacles). It never reaches VR's multi-Gbps requirement.
func WiFiRateBps(distanceM float64) float64 {
	switch {
	case distanceM <= 5:
		return WiFiBestRateBps
	case distanceM <= 15:
		// Linear roll-off to ~600 Mb/s at 15 m.
		f := (distanceM - 5) / 10
		return WiFiBestRateBps * (1 - 0.55*f)
	default:
		return 0.45 * WiFiBestRateBps
	}
}

// MultiAP is the brute-force alternative: several full mmWave APs spread
// around the room, each needing its own HDMI cable run to the PC.
type MultiAP struct {
	APs []*radio.AP
}

// Best returns the best aligned LOS SNR across the deployment for a
// headset at hs, along with the winning AP index.
func (m MultiAP) Best(tr *channel.Tracer, hs *radio.Headset) (snrDB float64, apIdx int) {
	best, idx := math.Inf(-1), -1
	for i, ap := range m.APs {
		ap.SteerToward(hs.Pos)
		hs.SteerToward(ap.Pos)
		snr := radio.LinkSNRdB(tr, &ap.Radio, &hs.Radio)
		if snr > best {
			best, idx = snr, i
		}
	}
	return best, idx
}

// CablingM estimates the HDMI cabling the deployment needs: wall-route
// (L1) distance from each AP to the PC — the "enormous cabling
// complexity" cost (§1).
func (m MultiAP) CablingM(pcPos geom.Vec) float64 {
	total := 0.0
	for _, ap := range m.APs {
		d := ap.Pos.Sub(pcPos)
		total += math.Abs(d.X) + math.Abs(d.Y)
	}
	return total
}

// RequiredSNRGap returns how far an SNR falls short of (negative) or
// clears (positive) a requirement, a convenience for reports.
func RequiredSNRGap(snrDB, requiredDB float64) float64 { return snrDB - requiredDB }

// GbpsOrZero converts an SNR to the achievable 802.11ad rate in Gb/s
// units for report tables (0 when the link is down).
func GbpsOrZero(rateBps float64) float64 { return rateBps / units.Gbps }
