package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if _, err := FFT(make([]complex128, 12)); err == nil {
		t.Error("expected error for length 12")
	}
	if _, err := IFFT(make([]complex128, 0)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A tone at bin 3 of a 64-point FFT lands all its energy in bin 3.
	n := 64
	x := Tone(n, 3.0/float64(n), 1, 0)
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range X {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if cmplx.Abs(v-complex(want, 0)) > 1e-9 {
			t.Errorf("X[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestFFTNegativeFreqTone(t *testing.T) {
	n := 32
	x := Tone(n, -2.0/float64(n), 1, 0)
	p, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := BinForFreq(n, -2.0/float64(n)); got != n-2 {
		t.Errorf("BinForFreq = %d, want %d", got, n-2)
	}
	if p[n-2] < 0.99 {
		t.Errorf("negative-frequency tone power = %v", p[n-2])
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := IFFT(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	et := 0.0
	for _, v := range x {
		et += real(v)*real(v) + imag(v)*imag(v)
	}
	ef := 0.0
	for _, v := range X {
		ef += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(et-ef/float64(len(x))) > 1e-6*et {
		t.Errorf("Parseval violated: %v vs %v", et, ef/float64(len(x)))
	}
}

func TestPowerSpectrumToneAmplitude(t *testing.T) {
	// Unit-amplitude tone on a bin -> power 1.0 in that bin.
	n := 128
	x := Tone(n, 5.0/float64(n), 1, 0.7)
	p, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[5]-1) > 1e-9 {
		t.Errorf("tone bin power = %v, want 1", p[5])
	}
}

func TestBandPowerAndPeak(t *testing.T) {
	n := 64
	x := Tone(n, 10.0/float64(n), 2, 0) // power 4 at bin 10
	weak := Tone(n, 30.0/float64(n), 0.5, 0)
	AddInPlace(x, weak)
	p, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := BandPower(p, 10, 1); math.Abs(got-4) > 0.05 {
		t.Errorf("BandPower = %v, want ~4", got)
	}
	// Peak excluding the strong bin finds the weak tone.
	if got := PeakBin(p, 10, 2); got != 30 {
		t.Errorf("PeakBin = %d, want 30", got)
	}
	if got := PeakBin(nil, 0, 0); got != -1 {
		t.Errorf("PeakBin(nil) = %d", got)
	}
}

func TestBandPowerWraps(t *testing.T) {
	n := 16
	x := Tone(n, 0, 1, 0) // DC tone
	p, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	// Integrating around bin 0 with wrap includes bins n-1 and 1.
	if got := BandPower(p, 0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("wrapped BandPower = %v", got)
	}
}

func TestSquareWaveAndModulate(t *testing.T) {
	m := SquareWave(8, 0.25) // period 4: 1,1,0,0,...
	want := []float64{1, 1, 0, 0, 1, 1, 0, 0}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("SquareWave = %v", m)
		}
	}
	x := Tone(8, 0, 1, 0)
	Modulate(x, m)
	if x[2] != 0 || x[0] == 0 {
		t.Errorf("Modulate failed: %v", x)
	}
}

func TestOOKSidebands(t *testing.T) {
	// OOK-modulating a carrier at f1 with a square wave at f2 must put
	// energy at f1±f2 — the separability property the MoVR alignment
	// protocol relies on (paper §4.1).
	n := 256
	carrierBin, modBin := 20, 8
	x := Tone(n, float64(carrierBin)/float64(n), 1, 0)
	m := SquareWave(n, float64(modBin)/float64(n))
	Modulate(x, m)
	p, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	// Carrier residue at f1 (half amplitude -> power 0.25).
	if math.Abs(p[carrierBin]-0.25) > 0.01 {
		t.Errorf("carrier residue power = %v, want ~0.25", p[carrierBin])
	}
	// First sidebands at f1±f2 with power (1/pi)^2 each.
	wantSB := 1 / (math.Pi * math.Pi)
	if math.Abs(p[carrierBin+modBin]-wantSB) > 0.01 {
		t.Errorf("upper sideband power = %v, want ~%v", p[carrierBin+modBin], wantSB)
	}
	if math.Abs(p[carrierBin-modBin]-wantSB) > 0.01 {
		t.Errorf("lower sideband power = %v, want ~%v", p[carrierBin-modBin], wantSB)
	}
}

func TestAddNoisePower(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]complex128, 4096)
	AddNoise(x, 2.0, rng)
	if got := SignalPower(x); math.Abs(got-2) > 0.15 {
		t.Errorf("noise power = %v, want ~2", got)
	}
	// Zero power is a no-op.
	y := make([]complex128, 4)
	AddNoise(y, 0, rng)
	if SignalPower(y) != 0 {
		t.Error("zero-power noise should not modify signal")
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(8)
	if w[0] != 0 || math.Abs(w[7]) > 1e-12 {
		t.Errorf("Hann endpoints = %v, %v", w[0], w[7])
	}
	if w := Hann(1); w[0] != 1 {
		t.Errorf("Hann(1) = %v", w)
	}
	x := Tone(8, 0, 1, 0)
	ApplyWindow(x, w)
	if x[0] != 0 {
		t.Error("ApplyWindow failed")
	}
}

func TestSignalPowerEmpty(t *testing.T) {
	if SignalPower(nil) != 0 {
		t.Error("empty SignalPower should be 0")
	}
}

// Property: FFT is linear.
func TestQuickFFTLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 64
	f := func(ar, ai float64) bool {
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		if cmplx.IsNaN(a) {
			return true
		}
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		X, _ := FFT(x)
		Y, _ := FFT(y)
		S, _ := FFT(sum)
		for i := range S {
			if cmplx.Abs(S[i]-(a*X[i]+Y[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: IFFT inverts FFT for random power-of-two lengths.
func TestQuickFFTInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 4, 16, 64, 512} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		X, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		y, err := IFFT(X)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}
