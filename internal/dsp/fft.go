// Package dsp provides the signal-processing primitives the simulator
// needs to run the MoVR backscatter measurement and the OFDM modem on
// actual synthesized samples: complex tone generation, a radix-2 FFT,
// windowing, power spectra, and sideband power integration.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-order discrete Fourier transform of x using an
// iterative radix-2 Cooley-Tukey algorithm. The input length must be a
// power of two; FFT returns an error otherwise. The input slice is not
// modified.
func FFT(x []complex128) ([]complex128, error) {
	return transform(x, false)
}

// IFFT computes the inverse DFT of x, normalized by 1/N, so that
// IFFT(FFT(x)) == x. The input length must be a power of two.
func IFFT(x []complex128) ([]complex128, error) {
	y, err := transform(x, true)
	if err != nil {
		return nil, err
	}
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y, nil
}

func transform(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	if !IsPow2(n) {
		return nil, fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation into a fresh output slice.
	y := make([]complex128, n)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		y[reverseBits(i, bits)] = x[i]
	}
	// Iterative butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := y[start+k]
				b := y[start+k+half] * w
				y[start+k] = a + b
				y[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return y, nil
}

func reverseBits(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

// Tone synthesizes n samples of a complex exponential with the given
// normalized frequency (cycles per sample, in [−0.5, 0.5)), linear
// amplitude, and initial phase in radians.
func Tone(n int, freqNorm, amplitude, phaseRad float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		ph := 2*math.Pi*freqNorm*float64(i) + phaseRad
		x[i] = complex(amplitude*math.Cos(ph), amplitude*math.Sin(ph))
	}
	return x
}

// AddInPlace adds each sample of src into dst. The slices must have equal
// length.
func AddInPlace(dst, src []complex128) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddNoise adds circularly-symmetric complex Gaussian noise with the given
// total noise power (linear, i.e. E[|n|²] = noisePower) to x in place,
// drawing from rng for reproducibility.
func AddNoise(x []complex128, noisePower float64, rng *rand.Rand) {
	if noisePower <= 0 {
		return
	}
	sigma := math.Sqrt(noisePower / 2)
	for i := range x {
		x[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies x by the window w element-wise, in place. The
// slices must have equal length.
func ApplyWindow(x []complex128, w []float64) {
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
}

// PowerSpectrum returns the per-bin power |X[k]|²/N² of the FFT of x, so
// that a unit-amplitude complex tone centred on a bin contributes power
// 1.0 to that bin. The input length must be a power of two.
func PowerSpectrum(x []complex128) ([]float64, error) {
	X, err := FFT(x)
	if err != nil {
		return nil, err
	}
	n2 := float64(len(x)) * float64(len(x))
	p := make([]float64, len(X))
	for i, v := range X {
		p[i] = (real(v)*real(v) + imag(v)*imag(v)) / n2
	}
	return p, nil
}

// BinForFreq returns the spectrum bin index corresponding to normalized
// frequency f (cycles/sample) for an n-point FFT. Negative frequencies map
// to the upper half of the spectrum.
func BinForFreq(n int, f float64) int {
	b := int(math.Round(f * float64(n)))
	b %= n
	if b < 0 {
		b += n
	}
	return b
}

// BandPower sums spectrum power in the bins within halfWidth of centre
// (wrapping around the spectrum edges).
func BandPower(spectrum []float64, centre, halfWidth int) float64 {
	n := len(spectrum)
	if n == 0 {
		return 0
	}
	total := 0.0
	for k := -halfWidth; k <= halfWidth; k++ {
		i := ((centre+k)%n + n) % n
		total += spectrum[i]
	}
	return total
}

// PeakBin returns the index of the largest spectrum bin, excluding any
// bins within excludeHalfWidth of excludeCentre (useful for skipping a
// strong carrier when hunting for a sideband). It returns −1 for an empty
// spectrum.
func PeakBin(spectrum []float64, excludeCentre, excludeHalfWidth int) int {
	n := len(spectrum)
	best, bestIdx := math.Inf(-1), -1
	for i, p := range spectrum {
		d := i - excludeCentre
		// Wrap distance.
		if d > n/2 {
			d -= n
		}
		if d < -n/2 {
			d += n
		}
		if d >= -excludeHalfWidth && d <= excludeHalfWidth {
			continue
		}
		if p > best {
			best, bestIdx = p, i
		}
	}
	return bestIdx
}

// SquareWave returns n samples of a 0/1 square wave with the given
// normalized frequency (cycles per sample), used to model on-off keying of
// the reflector's amplifier.
func SquareWave(n int, freqNorm float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		ph := math.Mod(freqNorm*float64(i), 1)
		if ph < 0 {
			ph += 1
		}
		if ph < 0.5 {
			w[i] = 1
		}
	}
	return w
}

// Modulate multiplies the complex signal x by the real envelope m in
// place. The slices must have equal length.
func Modulate(x []complex128, m []float64) {
	for i := range x {
		x[i] *= complex(m[i], 0)
	}
}

// SignalPower returns the mean power (1/N)·Σ|x[i]|² of x, or 0 for an
// empty slice.
func SignalPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}
